"""The public engine facade.

:class:`AggregateRiskEngine` selects one of the six backends from an
:class:`~repro.core.config.EngineConfig` and drives it through the unified
**ExecutionPlan** pipeline: every public workload is *lowered* to an
:class:`~repro.core.plan.ExecutionPlan` (tiles over trial blocks x stacked
term-netted layer rows) by a :class:`~repro.core.plan.PlanBuilder`, and the
backend *schedules* that plan through the shared kernels — facade -> plan ->
scheduler.  Typical use::

    from repro.core import AggregateRiskEngine, EngineConfig

    engine = AggregateRiskEngine(EngineConfig(backend="vectorized"))
    result = engine.run(program, yet)
    year_losses = result.ylt.layer(0)

Many programs (e.g. an underwriter's candidate-term variants, or several
cedants' submissions over one simulated event set) can be priced in a single
engine invocation with :meth:`AggregateRiskEngine.run_many` — their layers
are concatenated into one plan (identical ELT gathers deduplicated across
variants), the whole batch flows through the fused multi-layer kernel in one
pass over the Year Event Table, and the result is split back per program::

    engine = AggregateRiskEngine()          # fused_layers=True by default
    results = engine.run_many([program_a, program_b], yet)
    premium_basis = results[0].ylt.layer(0)  # program_a's first layer

Workloads that synthesise their own term-netted loss rows — above all the
replication-batched secondary-uncertainty engine, which samples ``R``
realisations of a program and prices them as ``R x n_layers`` fused rows —
enter through :meth:`AggregateRiskEngine.run_stacked`; power users can build
and execute plans directly via :class:`~repro.core.plan.PlanBuilder` and
:meth:`AggregateRiskEngine.run_plan`.  Streaming many programs through
blocks of one engine pass — the scenario-diversity path — is the job of
:class:`~repro.portfolio.sweep.PortfolioSweepService` (CLI: ``are sweep``).

The resulting banded quote of the uncertainty path looks like::

    analysis = SecondaryUncertaintyAnalysis(uncertain_layers)
    quote = analysis.quote(yet, n_replications=64, rng=2012)
    print(quote.summary())            # "...: EL=1,234 premium=2,345 aal_band=[...]"
    print(quote.band("aal").relative_spread())

(the CLI equivalent is ``are uncertainty --replications 64``).

Long-lived serving deployments should front the engine with a
:class:`~repro.service.service.RiskService`: it keeps one warm engine, a
content-addressed cache of lowered plans and fused stacks, and (multicore)
retained shared-memory workspaces, so repeated requests skip straight to
the kernel pass — see :meth:`retain_shared_workspaces`.

Every backend schedules a plan as a loop over disjoint **trial shards**
whose :class:`~repro.core.results.PartialResult` blocks merge exactly
(``EngineConfig(trial_shards=8)``, or ``plan.shard(n)`` merged through a
:class:`~repro.core.results.ResultAccumulator`); the merged result is
bit-identical to the monolithic run for any shard count.
:meth:`AggregateRiskEngine.run_sharded` extends the same loop out-of-core:
pointed at a :class:`~repro.yet.io.YetShardReader`, it prices a stored YET
larger than RAM with resident memory bounded by one shard plus the
accumulated year-loss blocks.

The pre-plan per-backend ``run`` dispatch (the former ``"legacy"`` execution
mode) was kept one release behind the plan-vs-legacy conformance suite and
has been removed as scheduled; requesting that mode on
:class:`~repro.core.config.EngineConfig` now raises with a migration hint.

The facade also provides :meth:`AggregateRiskEngine.compare_backends`, which
runs the same workload through several backends (optionally through both the
fused multi-layer path and the per-layer path of each backend) and verifies
that they agree — the programmatic form of the library's core correctness
guarantee.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Mapping, Sequence

import numpy as np

from repro.core.chunked import ChunkedEngine
from repro.core.config import BACKEND_NAMES, EngineConfig
from repro.core.gpu_sim import GPUSimulatedEngine
from repro.core.multicore import MulticoreEngine
from repro.core.native_backend import NativeEngine
from repro.core.plan import ExecutionPlan, PlanBuilder
from repro.core.results import EngineResult, ResultAccumulator
from repro.core.sequential import SequentialEngine
from repro.core.vectorized import VectorizedEngine
from repro.financial.terms import LayerTerms, LayerTermsVectors
from repro.parallel.device import WorkloadShape
from repro.portfolio.layer import Layer
from repro.portfolio.program import ReinsuranceProgram
from repro.utils.timing import Timer
from repro.yet.io import shard_count_for_budget
from repro.yet.table import YearEventTable

__all__ = ["AggregateRiskEngine", "available_backends"]

_BACKEND_CLASSES: Dict[str, Callable[[EngineConfig], object]] = {
    "sequential": SequentialEngine,
    "vectorized": VectorizedEngine,
    "chunked": ChunkedEngine,
    "multicore": MulticoreEngine,
    "gpu": GPUSimulatedEngine,
    "native": NativeEngine,
}


def available_backends() -> tuple[str, ...]:
    """Names of the engine backends shipped with the library."""
    return BACKEND_NAMES


class AggregateRiskEngine:
    """Facade over the aggregate-analysis backends."""

    def __init__(self, config: EngineConfig | None = None) -> None:
        self.config = config if config is not None else EngineConfig()
        backend_cls = _BACKEND_CLASSES.get(self.config.backend)
        if backend_cls is None:  # pragma: no cover - EngineConfig already validates
            raise ValueError(f"unknown backend {self.config.backend!r}")
        self._backend = backend_cls(self.config)

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #
    @property
    def backend_name(self) -> str:
        """Name of the selected backend."""
        return self.config.backend

    def run_plan(self, plan: ExecutionPlan) -> EngineResult:
        """Execute a prebuilt :class:`~repro.core.plan.ExecutionPlan`.

        This is the single execution entry every other method funnels into:
        ``run``/``run_many``/``run_stacked`` only differ in how they *lower*
        their workload to a plan.  The backend schedules the plan's tiles
        through the shared kernels and returns the combined result (use
        :meth:`ExecutionPlan.split_result` to break a multi-segment plan's
        result back apart).
        """
        return self._backend.run_plan(plan)

    def run(self, program: ReinsuranceProgram | Layer, yet: YearEventTable) -> EngineResult:
        """Run the aggregate analysis and return the full result object."""
        return self.run_plan(PlanBuilder.from_program(program, yet))

    def year_loss_table(self, program: ReinsuranceProgram | Layer, yet: YearEventTable):
        """Run the analysis and return only the Year Loss Table."""
        return self.run(program, yet).ylt

    def run_sharded(
        self,
        program: ReinsuranceProgram | Layer,
        source,
        n_shards: int = 0,
        max_shard_bytes: int | None = None,
    ) -> EngineResult:
        """Price a program trial shard by trial shard and merge exactly.

        ``source`` is either an in-memory
        :class:`~repro.yet.table.YearEventTable` — equivalent to ``run`` with
        ``n_shards`` trial shards, and bit-identical to it — or an
        out-of-core :class:`~repro.yet.io.YetShardReader`, whose event
        columns are memory-mapped and materialised one shard at a time: the
        resident working set is one shard's YET plus the fused loss stack
        plus the accumulated year-loss blocks, however large the stored
        table is.  ``max_shard_bytes`` (readers only) picks the shard count
        from a per-shard byte budget instead.

        Per-trial reductions are trial-local, so the merged result is
        bit-identical to a monolithic run of the same table for *any* shard
        count — the engine-level form of the paper's YET partitioning.
        """
        program = ReinsuranceProgram.wrap(program)
        config = self.config
        if isinstance(source, YearEventTable):
            if max_shard_bytes is not None:
                n_shards = shard_count_for_budget(source.event_bytes, max_shard_bytes)
            plan = PlanBuilder.from_program(
                program, source, n_shards=n_shards or config.trial_shards
            )
            return self.run_plan(plan)

        if not hasattr(source, "iter_shards"):
            raise TypeError(
                "source must be a YearEventTable or a shard reader exposing "
                f"iter_shards(), got {type(source).__name__}"
            )
        if max_shard_bytes is not None:
            n_shards = source.shard_count_for_budget(max_shard_bytes)
        count = max(n_shards or config.trial_shards, 1)

        wall = Timer().start()
        accumulator = ResultAccumulator(
            program.n_layers, source.n_trials, row_names=program.layer_names
        )
        shared_stack: np.ndarray | None = None
        shards_run = 0
        for trials, shard_yet in source.iter_shards(count):
            shard_plan = PlanBuilder.from_program(program, shard_yet)
            if shared_stack is not None:
                shard_plan.adopt_stack(shared_stack)
            result = self.run_plan(shard_plan)
            if shared_stack is None:
                # Fused backends build the stack pricing the first shard;
                # later shard plans adopt it instead of rebuilding (the
                # reference backends never build one — nothing to share).
                shared_stack = shard_plan.cached_stack
            accumulator.add_result(result, trials)
            shards_run += 1

        shape = WorkloadShape(
            n_trials=source.n_trials,
            events_per_trial=max(source.mean_events_per_trial, 1e-9),
            n_elts=max(int(round(program.mean_elts_per_layer)), 1),
            n_layers=program.n_layers,
        )
        return accumulator.finalize(
            self.backend_name,
            wall_seconds=wall.stop(),
            workload_shape=shape,
            details={
                "sharded": {"n_shards": shards_run, "source": "reader"},
                "merged_shards": {
                    "n_shards": shards_run,
                    "n_trials": source.n_trials,
                },
            },
        )

    def run_distributed(
        self,
        program: ReinsuranceProgram | Layer,
        source,
        workers: Sequence[str],
        n_shards: int = 0,
        timeout: float = 120.0,
        on_partial=None,
    ) -> EngineResult:
        """Price a program across a fleet of socket workers; exact merge.

        The fleet form of :meth:`run_sharded`: the trial domain is cut into
        disjoint shards on a work-stealing queue, each worker executes its
        shards remotely under this engine's plan-relevant config (shipped
        with every request), and the streamed
        :class:`~repro.core.results.PartialResult` blocks merge into one
        accumulator as they arrive.  The result is **bit-identical** to a
        monolithic :meth:`run` on every backend; a worker that times out or
        dies has its shards retried once and then reassigned to survivors.

        ``workers`` are ``"host:port"`` addresses of ``are worker``
        processes.  ``source`` is an in-memory YET (shipped once per
        worker, digest-cached there) or a
        :class:`~repro.yet.io.YetShardReader` over a store directory every
        worker can reach.  See :mod:`repro.distributed` for the protocol.
        """
        from repro.distributed.fleet import FleetEngine

        with FleetEngine(workers, config=self.config, timeout=timeout) as fleet:
            return fleet.run(program, source, n_shards=n_shards, on_partial=on_partial)

    # ------------------------------------------------------------------ #
    # Warm-engine lifecycle (used by the RiskService)
    # ------------------------------------------------------------------ #
    def retain_shared_workspaces(self, enabled: bool = True) -> None:
        """Keep multicore shared-memory workspaces alive across runs.

        With retention enabled, re-executing the *same*
        :class:`~repro.core.plan.ExecutionPlan` object reuses the published
        shared-memory workspace instead of copying the fused stack and YET
        columns back into ``/dev/shm`` per call — the warm-request transport
        of the :class:`~repro.service.service.RiskService`.  A retained
        workspace is released when its plan is garbage collected, when
        retention is disabled, or via :meth:`release_workspaces`.  Backends
        without a shared-memory transport ignore the toggle.
        """
        backend = self._backend
        if hasattr(backend, "retain_workspaces"):
            backend.retain_workspaces = bool(enabled)
            if not enabled:
                backend.release_workspaces()

    def release_workspaces(self) -> None:
        """Close any shared-memory workspaces retained across runs."""
        backend = self._backend
        if hasattr(backend, "release_workspaces"):
            backend.release_workspaces()

    def close(self) -> None:
        """Release every resource the engine holds beyond a single run."""
        self.release_workspaces()

    def run_many(
        self,
        programs: Sequence[ReinsuranceProgram | Layer],
        yet: YearEventTable,
        dedupe: bool = True,
    ) -> List[EngineResult]:
        """Price many programs over one YET in a single engine invocation.

        The programs' layers are concatenated into one
        :class:`~repro.core.plan.ExecutionPlan` and executed in one backend
        run — with the default ``fused_layers`` configuration that means a
        single stacked gather covering *every* layer of *every* program per
        pass over the Year Event Table.  The combined result is then split
        back into one :class:`EngineResult` per input program (each carrying
        the shared run's wall time and a ``details["batch"]`` entry
        recording the batch shape).

        All programs must reference the same event-catalog size (they are
        priced against the same YET).  With ``dedupe`` (the default) layers
        of different programs that reference the same ELT objects — e.g.
        candidate-term variants built with
        :meth:`~repro.portfolio.layer.Layer.with_terms` — share one stack
        row, so each distinct term-netted gather is read once regardless of
        how many variants request it.
        """
        normalised = [ReinsuranceProgram.wrap(program) for program in programs]
        if not normalised:
            raise ValueError("run_many needs at least one program")
        plan = PlanBuilder.from_programs(normalised, yet, dedupe=dedupe)
        return plan.split_result(self.run_plan(plan))

    def run_stacked(
        self,
        stack: np.ndarray,
        terms: Sequence[LayerTerms] | LayerTermsVectors,
        yet: YearEventTable,
        layer_names: Sequence[str] | None = None,
        n_shards: int = 0,
    ) -> EngineResult:
        """Price precomputed term-netted stack rows over one YET.

        ``stack`` is an ``(n_rows, catalog_size)`` matrix in the layout of
        :func:`~repro.core.kernels.build_layer_loss_stack` — each row a dense
        per-catalog-entry loss vector already net of per-ELT financial terms —
        and ``terms`` supplies one set of layer terms per row.  This is the
        entry point for workloads that synthesise their own rows instead of
        deriving them from :class:`~repro.portfolio.layer.Layer` objects; the
        replication-batched secondary-uncertainty engine prices all ``R``
        sampled realisations of a program as ``R * n_layers`` stacked rows
        through it in a single pass over the Year Event Table.

        The workload lowers to a synthetic :class:`ExecutionPlan` (no source
        layers), so it is supported by the backends with a fused path —
        vectorized, chunked, multicore and native; the sequential and gpu
        reference backends raise ``ValueError``.  ``n_shards`` executes the plan as
        that many exactly-merged trial shards (``0`` = the config default).
        """
        plan = PlanBuilder.from_stack(
            stack, terms, yet, row_names=layer_names, n_shards=n_shards
        )
        return self.run_plan(plan)

    # ------------------------------------------------------------------ #
    # Cross-backend validation
    # ------------------------------------------------------------------ #
    @staticmethod
    def compare_backends(
        program: ReinsuranceProgram | Layer,
        yet: YearEventTable,
        backends: Iterable[str] = ("sequential", "vectorized", "chunked"),
        base_config: EngineConfig | None = None,
        rtol: float = 1e-9,
        atol: float = 1e-6,
        check_fused: bool = False,
    ) -> Mapping[str, EngineResult]:
        """Run several backends on the same workload and assert agreement.

        With ``check_fused=True`` every backend is additionally run with
        ``fused_layers`` inverted relative to ``base_config`` — i.e. the fused
        multi-layer batch path and the per-layer loop are both exercised and
        must agree.  The extra results are stored under ``"<name>:fused"`` /
        ``"<name>:per-layer"`` keys, which reflect the *requested* config:
        backends without a fused path (sequential, gpu) — and configs where
        the fused path is unavailable, such as chunked with
        ``use_aggregate_shortcut=False`` — simply run their reference path
        twice; check ``result.details["fused_layers"]`` for the path a run
        actually took.

        Returns the per-run results; raises ``AssertionError`` with a
        descriptive message if any run's YLT deviates from the first run's
        YLT beyond the tolerances.
        """
        base = base_config if base_config is not None else EngineConfig()
        runs: List[tuple[str, EngineConfig]] = []
        for name in backends:
            runs.append((name, base.with_backend(name)))
            if check_fused:
                flipped = base.with_backend(name, fused_layers=not base.fused_layers)
                suffix = "fused" if flipped.fused_layers else "per-layer"
                runs.append((f"{name}:{suffix}", flipped))

        results: Dict[str, EngineResult] = {}
        reference_name: str | None = None
        for key, config in runs:
            results[key] = AggregateRiskEngine(config).run(program, yet)
            if reference_name is None:
                reference_name = key
                continue
            reference = results[reference_name].ylt.losses
            candidate = results[key].ylt.losses
            if not np.allclose(reference, candidate, rtol=rtol, atol=atol):
                worst = float(np.max(np.abs(reference - candidate)))
                raise AssertionError(
                    f"backend {key!r} disagrees with {reference_name!r}: "
                    f"max abs difference {worst:.3e}"
                )
        return results
