"""Sequential reference backend.

A line-for-line transcription of the paper's basic algorithm (Section II-B,
lines 1–19) in pure Python: the outer loops iterate over layers and trials,
the inner loops over the trial's events and the layer's ELTs.  It is by far
the slowest backend — that is the point: it is the *correctness reference*
against which every optimised backend is checked, and the baseline the
speedup figures are measured from.

The backend also honours ``EngineConfig.elt_representation`` so the Section
III-B data-structure discussion (direct access table vs binary search vs
hashing) can be evaluated on the CPU.

:meth:`SequentialEngine.run_plan` follows the same shard-loop + accumulate
shape as the optimised backends (trials are analysed one at a time either
way, so sharding is pure bookkeeping here) — which keeps the reference
implementation a valid oracle for the sharded paths too: a per-(layer,
trial) result depends on nothing outside its trial, trivially.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.config import EngineConfig
from repro.core.phases import (
    PHASE_ELT_LOOKUP,
    PHASE_EVENT_FETCH,
    PHASE_FINANCIAL_TERMS,
    PHASE_LAYER_TERMS,
)
from repro.core.plan import finalize_plan_result
from repro.core.results import EngineResult, PartialResult, ResultAccumulator
from repro.elt.direct_access import DirectAccessTable
from repro.elt.hashed_table import HashedEventLossTable
from repro.elt.sorted_table import SortedEventLossTable
from repro.elt.table import EventLossTable, LossLookup
from repro.utils.timing import PhaseTimer, Timer
from repro.yet.table import YearEventTable

__all__ = ["SequentialEngine", "build_lookup"]


def build_lookup(elt: EventLossTable, representation: str) -> LossLookup:
    """Build the configured lookup structure for one ELT."""
    if representation == "direct":
        return DirectAccessTable(elt)
    if representation == "sorted":
        return SortedEventLossTable(elt)
    if representation == "hashed":
        return HashedEventLossTable(elt)
    raise ValueError(f"unknown ELT representation {representation!r}")


class SequentialEngine:
    """Pure-Python reference implementation of the aggregate analysis."""

    name = "sequential"

    def __init__(self, config: EngineConfig | None = None) -> None:
        self.config = config if config is not None else EngineConfig(backend="sequential")

    # ------------------------------------------------------------------ #
    # Plan scheduler
    # ------------------------------------------------------------------ #
    def run_plan(self, plan) -> EngineResult:
        """Execute an :class:`~repro.core.plan.ExecutionPlan` trial by trial.

        The sequential backend schedules a plan by iterating its source
        layers through the reference per-(layer, trial) loop — a line-for-
        line transcription of the paper's basic algorithm.  Synthetic plans
        (precomputed stack rows without source layers) have no pure-Python
        form here.
        """
        if not plan.has_layers:
            raise ValueError(
                "backend 'sequential' has no stacked execution path; "
                "use one of the fused backends (vectorized, chunked, multicore)"
            )
        config = self.config
        timer = PhaseTimer(enabled=config.record_phases)
        wall = Timer().start()

        # Preprocessing stage: load the ELTs of every layer into the
        # configured lookup structures (the paper's "data is loaded into local
        # memory" step).  Built once, shared by every shard.
        layer_lookups: list[list[LossLookup]] = [
            [build_lookup(elt, config.elt_representation) for elt in layer.elts]
            for layer in plan.layers
        ]
        record_phases = config.record_phases

        shards = plan.shard_ranges(plan.n_shards or config.trial_shards)
        accumulator = ResultAccumulator.for_plan(plan)
        for trials in shards:
            losses = np.zeros((plan.n_rows, trials.size), dtype=np.float64)
            max_occ = (
                np.zeros((plan.n_rows, trials.size), dtype=np.float64)
                if config.record_max_occurrence
                else None
            )
            for layer_index, layer in enumerate(plan.layers):      # line 1: for all a in L
                lookups = layer_lookups[layer_index]
                elt_terms = [elt.terms for elt in layer.elts]
                terms = layer.terms
                for trial_index in trials:                          # line 2: for all b in YET
                    year_loss, trial_max = self._analyse_trial(
                        plan.yet, trial_index, lookups, elt_terms, terms, timer, record_phases
                    )
                    losses[layer_index, trial_index - trials.start] = year_loss
                    if max_occ is not None:
                        max_occ[layer_index, trial_index - trials.start] = trial_max
            accumulator.add(PartialResult(trials, losses, max_occ))

        return finalize_plan_result(
            plan,
            self.name,
            accumulator.year_losses(),
            accumulator.max_occurrence_losses(),
            wall.stop(),
            {
                "elt_representation": config.elt_representation,
                "fused_layers": False,
                "trial_shards": len(shards),
            },
            phase_breakdown=timer.breakdown() if config.record_phases else None,
        )

    # ------------------------------------------------------------------ #
    # One (layer, trial) pair — the paper's lines 3-19
    # ------------------------------------------------------------------ #
    @staticmethod
    def _analyse_trial(
        yet: YearEventTable,
        trial_index: int,
        lookups: list[LossLookup],
        elt_terms: list,
        terms,
        timer: PhaseTimer,
        record_phases: bool,
    ) -> tuple[float, float]:
        """Year loss and maximum occurrence loss of one trial for one layer."""
        # --- event fetch (line 4: for all d in Et in b) ------------------- #
        if record_phases:
            t0 = time.perf_counter()
        events = yet.trial(trial_index)
        event_list = [int(e) for e in events]
        if record_phases:
            timer.add(PHASE_EVENT_FETCH, time.perf_counter() - t0)

        # --- ELT lookups (lines 3-5) -------------------------------------- #
        if record_phases:
            t0 = time.perf_counter()
        raw_losses: list[list[float]] = []
        for lookup in lookups:                                         # line 3: for all c in ELTs
            raw_losses.append([lookup.lookup(event) for event in event_list])
        if record_phases:
            timer.add(PHASE_ELT_LOOKUP, time.perf_counter() - t0)

        # --- financial terms and combination (lines 6-9) ------------------- #
        if record_phases:
            t0 = time.perf_counter()
        combined = [0.0] * len(event_list)
        for elt_index, losses_for_elt in enumerate(raw_losses):
            ft = elt_terms[elt_index]
            for d, raw in enumerate(losses_for_elt):                   # lines 6-7
                combined[d] += ft.apply(raw)                           # lines 8-9
        if record_phases:
            timer.add(PHASE_FINANCIAL_TERMS, time.perf_counter() - t0)

        # --- layer terms (lines 10-19) ------------------------------------- #
        if record_phases:
            t0 = time.perf_counter()
        max_occurrence = 0.0
        cumulative = 0.0
        previous_net = 0.0
        year_loss = 0.0
        for loss in combined:
            occurrence = terms.apply_occurrence(loss)                  # lines 10-11
            if occurrence > max_occurrence:
                max_occurrence = occurrence
            cumulative += occurrence                                   # lines 12-13
            net = terms.apply_aggregate(cumulative)                    # lines 14-15
            year_loss += net - previous_net                            # lines 16-19
            previous_net = net
        if record_phases:
            timer.add(PHASE_LAYER_TERMS, time.perf_counter() - t0)
        return year_loss, max_occurrence
