"""Phase names of the aggregate analysis.

Figure 6b of the paper breaks the engine's runtime into four phases; the same
names are used by every backend's instrumentation so that breakdowns are
directly comparable:

* ``event_fetch`` — reading the trial's event ids (and timestamps) from the
  Year Event Table;
* ``elt_lookup`` — random lookups of each event's loss in the layer's ELT
  direct access tables (the paper measures 78 % of runtime here);
* ``financial_terms`` — applying the per-ELT financial terms ``I`` and
  combining losses across ELTs;
* ``layer_terms`` — applying the occurrence and aggregate layer terms ``T``
  and accumulating the trial loss.
"""

from __future__ import annotations

from repro.utils.timing import PhaseTimer, TimingBreakdown

__all__ = [
    "PHASE_EVENT_FETCH",
    "PHASE_ELT_LOOKUP",
    "PHASE_FINANCIAL_TERMS",
    "PHASE_LAYER_TERMS",
    "ALL_PHASES",
    "new_phase_timer",
    "empty_breakdown",
]

PHASE_EVENT_FETCH = "event_fetch"
PHASE_ELT_LOOKUP = "elt_lookup"
PHASE_FINANCIAL_TERMS = "financial_terms"
PHASE_LAYER_TERMS = "layer_terms"

#: All phase names in the order Figure 6b reports them.
ALL_PHASES: tuple[str, ...] = (
    PHASE_EVENT_FETCH,
    PHASE_ELT_LOOKUP,
    PHASE_FINANCIAL_TERMS,
    PHASE_LAYER_TERMS,
)


def new_phase_timer(enabled: bool) -> PhaseTimer:
    """Create a phase timer (a disabled timer has negligible overhead)."""
    return PhaseTimer(enabled=enabled)


def empty_breakdown() -> TimingBreakdown:
    """A breakdown with all four phases present and zero time."""
    return TimingBreakdown({phase: 0.0 for phase in ALL_PHASES})
