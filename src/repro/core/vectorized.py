"""Vectorized (whole-YET) backend.

By default (``EngineConfig.fused_layers``) the whole plan is priced in one
fused pass: every row's term-netted dense losses are stacked into a single
``(n_rows, catalog_size)`` matrix, the flattened event-id array of the
entire Year Event Table is gathered from it in one fancy-indexing operation,
and the layer terms are applied as broadcast expressions over the resulting
``(n_rows, n_events)`` matrix.  With ``fused_layers=False`` the backend
falls back to one kernel call per layer (re-gathering the YET against each
layer's matrix separately).  Either way this is the "make the inner loops
disappear" translation of the paper's one-thread-per-trial data parallelism
to NumPy: the data parallelism is across *all* trials (and, fused, all
rows) at once rather than across hardware threads.

:meth:`VectorizedEngine.run_plan` is the scheduler for the unified
:class:`~repro.core.plan.ExecutionPlan` IR — it executes the plan's single
full-size tile, and it is the backend's *only* entry point: the pre-plan
per-backend ``run`` dispatch was removed once the plan-vs-legacy
conformance window closed.
"""

from __future__ import annotations

import numpy as np

from repro.core.config import EngineConfig
from repro.core.kernels import layer_trial_losses, layer_trial_losses_batch
from repro.core.plan import ExecutionPlan, finalize_plan_result
from repro.core.results import EngineResult
from repro.utils.timing import PhaseTimer, Timer

__all__ = ["VectorizedEngine"]


class VectorizedEngine:
    """NumPy data-parallel backend operating on the whole YET at once."""

    name = "vectorized"

    def __init__(self, config: EngineConfig | None = None) -> None:
        self.config = config if config is not None else EngineConfig(backend="vectorized")

    # ------------------------------------------------------------------ #
    # Plan scheduler
    # ------------------------------------------------------------------ #
    def run_plan(self, plan: ExecutionPlan) -> EngineResult:
        """Execute an :class:`~repro.core.plan.ExecutionPlan` in one pass."""
        config = self.config
        timer = PhaseTimer(enabled=config.record_phases)
        wall = Timer().start()

        fused = config.fused_layers or not plan.has_layers
        if fused:
            losses, max_occ = layer_trial_losses_batch(
                (),
                plan.yet.event_ids,
                plan.yet.trial_offsets,
                plan.terms,
                use_shortcut=config.use_aggregate_shortcut,
                record_max_occurrence=config.record_max_occurrence,
                timer=timer,
                stack=plan.stack(timer),
                row_map=plan.row_map,
            )
        else:
            losses, max_occ = _per_layer_losses(plan, config, timer)

        return finalize_plan_result(
            plan,
            self.name,
            losses,
            max_occ,
            wall.stop(),
            {"fused_layers": fused},
            phase_breakdown=timer.breakdown() if config.record_phases else None,
        )


def _per_layer_losses(
    plan: ExecutionPlan, config: EngineConfig, timer: PhaseTimer
) -> tuple[np.ndarray, np.ndarray | None]:
    """The ``fused_layers=False`` ablation: one kernel call per plan row."""
    losses = np.zeros((plan.n_rows, plan.n_trials), dtype=np.float64)
    max_occ = (
        np.zeros((plan.n_rows, plan.n_trials), dtype=np.float64)
        if config.record_max_occurrence
        else None
    )
    for row, layer in enumerate(plan.layers):
        year_losses, trial_max = layer_trial_losses(
            layer.loss_matrix(),
            plan.yet.event_ids,
            plan.yet.trial_offsets,
            layer.terms,
            use_shortcut=config.use_aggregate_shortcut,
            record_max_occurrence=config.record_max_occurrence,
            timer=timer,
        )
        losses[row] = year_losses
        if max_occ is not None and trial_max is not None:
            max_occ[row] = trial_max
    return losses, max_occ
