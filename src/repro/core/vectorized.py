"""Vectorized (whole-YET) backend.

By default (``EngineConfig.fused_layers``) the whole program is priced in one
fused pass: every layer's term-netted dense losses are stacked into a single
``(n_layers, catalog_size)`` matrix, the flattened event-id array of the
entire Year Event Table is gathered from it in one fancy-indexing operation,
and the layer terms are applied as broadcast expressions over the resulting
``(n_layers, n_events)`` matrix.  With ``fused_layers=False`` the backend
falls back to one kernel call per layer (re-gathering the YET against each
layer's matrix separately).  Either way this is the "make the inner loops
disappear" translation of the paper's one-thread-per-trial data parallelism
to NumPy: the data parallelism is across *all* trials (and, fused, all
layers) at once rather than across hardware threads.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.config import EngineConfig
from repro.core.kernels import layer_trial_losses, layer_trial_losses_batch
from repro.core.results import EngineResult
from repro.financial.terms import LayerTerms, LayerTermsVectors
from repro.parallel.device import WorkloadShape
from repro.portfolio.layer import Layer
from repro.portfolio.program import ReinsuranceProgram
from repro.utils.timing import PhaseTimer, Timer
from repro.yet.table import YearEventTable
from repro.ylt.table import YearLossTable

__all__ = ["VectorizedEngine"]


class VectorizedEngine:
    """NumPy data-parallel backend operating on the whole YET at once."""

    name = "vectorized"

    def __init__(self, config: EngineConfig | None = None) -> None:
        self.config = config if config is not None else EngineConfig(backend="vectorized")

    def run(self, program: ReinsuranceProgram | Layer, yet: YearEventTable) -> EngineResult:
        """Run the aggregate analysis for every layer of ``program`` over ``yet``."""
        program = ReinsuranceProgram.wrap(program)
        config = self.config
        timer = PhaseTimer(enabled=config.record_phases)
        wall = Timer().start()

        n_trials = yet.n_trials
        if config.fused_layers:
            losses, max_occ = layer_trial_losses_batch(
                [layer.loss_matrix() for layer in program.layers],
                yet.event_ids,
                yet.trial_offsets,
                [layer.terms for layer in program.layers],
                use_shortcut=config.use_aggregate_shortcut,
                record_max_occurrence=config.record_max_occurrence,
                timer=timer,
            )
        else:
            losses = np.zeros((program.n_layers, n_trials), dtype=np.float64)
            max_occ = (
                np.zeros((program.n_layers, n_trials), dtype=np.float64)
                if config.record_max_occurrence
                else None
            )
            for layer_index, layer in enumerate(program.layers):
                matrix = layer.loss_matrix()
                year_losses, trial_max = layer_trial_losses(
                    matrix,
                    yet.event_ids,
                    yet.trial_offsets,
                    layer.terms,
                    use_shortcut=config.use_aggregate_shortcut,
                    record_max_occurrence=config.record_max_occurrence,
                    timer=timer,
                )
                losses[layer_index] = year_losses
                if max_occ is not None and trial_max is not None:
                    max_occ[layer_index] = trial_max

        wall_seconds = wall.stop()
        shape = WorkloadShape(
            n_trials=n_trials,
            events_per_trial=max(yet.mean_events_per_trial, 1e-9),
            n_elts=max(int(round(program.mean_elts_per_layer)), 1),
            n_layers=program.n_layers,
        )
        return EngineResult(
            ylt=YearLossTable(losses, program.layer_names, max_occ),
            backend=self.name,
            wall_seconds=wall_seconds,
            workload_shape=shape,
            phase_breakdown=timer.breakdown() if config.record_phases else None,
            details={"fused_layers": config.fused_layers},
        )

    def run_stacked(
        self,
        stack: np.ndarray,
        terms: Sequence[LayerTerms] | LayerTermsVectors,
        yet: YearEventTable,
        layer_names: Sequence[str] | None = None,
    ) -> EngineResult:
        """Price precomputed term-netted stack rows over ``yet`` in one pass.

        ``stack`` is an ``(n_rows, catalog_size)`` matrix of per-catalog-entry
        losses already net of per-ELT financial terms — the shape
        :func:`~repro.core.kernels.build_layer_loss_stack` produces, but
        coming from any source (e.g. the sampled replication rows of the
        secondary-uncertainty engine).  Each row is priced under the matching
        entry of ``terms`` exactly as a program layer would be.
        """
        config = self.config
        timer = PhaseTimer(enabled=config.record_phases)
        wall = Timer().start()
        losses, max_occ = layer_trial_losses_batch(
            (),
            yet.event_ids,
            yet.trial_offsets,
            terms,
            use_shortcut=config.use_aggregate_shortcut,
            record_max_occurrence=config.record_max_occurrence,
            timer=timer,
            stack=stack,
        )
        wall_seconds = wall.stop()
        shape = WorkloadShape(
            n_trials=yet.n_trials,
            events_per_trial=max(yet.mean_events_per_trial, 1e-9),
            n_elts=1,
            n_layers=losses.shape[0],
        )
        return EngineResult(
            ylt=YearLossTable(losses, layer_names, max_occ),
            backend=self.name,
            wall_seconds=wall_seconds,
            workload_shape=shape,
            phase_breakdown=timer.breakdown() if config.record_phases else None,
            details={"fused_layers": True, "stacked": True},
        )
