"""Vectorized (whole-shard) backend.

By default (``EngineConfig.fused_layers``) each trial shard of the plan is
priced in one fused pass: every row's term-netted dense losses are stacked
into a single ``(n_rows, catalog_size)`` matrix, the shard's flattened
event-id window is gathered from it in one fancy-indexing operation, and the
layer terms are applied as broadcast expressions over the resulting
``(n_rows, n_events)`` matrix.  With ``fused_layers=False`` the backend
falls back to one kernel call per layer (re-gathering the window against
each layer's matrix separately).  Either way this is the "make the inner
loops disappear" translation of the paper's one-thread-per-trial data
parallelism to NumPy.

:meth:`VectorizedEngine.run_plan` is the scheduler for the unified
:class:`~repro.core.plan.ExecutionPlan` IR, written — like every backend's —
in shard-loop + accumulate form: the plan's trial range is split into
``plan.n_shards or EngineConfig.trial_shards`` disjoint shards, each shard's
:class:`~repro.core.results.PartialResult` is computed independently, and a
:class:`~repro.core.results.ResultAccumulator` reassembles the monolithic
result.  Per-trial reductions are trial-local, so the merge is exact: any
shard count produces bit-identical output, and ``trial_shards > 1`` bounds
the per-pass gather to one shard's events.
"""

from __future__ import annotations

import numpy as np

from repro.core.config import EngineConfig
from repro.core.kernels import layer_trial_losses, layer_trial_losses_batch
from repro.core.plan import ExecutionPlan, finalize_plan_result
from repro.core.results import EngineResult, PartialResult, ResultAccumulator
from repro.parallel.partitioner import TrialRange
from repro.utils.timing import PhaseTimer, Timer

__all__ = ["VectorizedEngine"]


class VectorizedEngine:
    """NumPy data-parallel backend operating on whole trial shards at once."""

    name = "vectorized"

    def __init__(self, config: EngineConfig | None = None) -> None:
        self.config = config if config is not None else EngineConfig(backend="vectorized")

    # ------------------------------------------------------------------ #
    # Plan scheduler
    # ------------------------------------------------------------------ #
    def run_plan(self, plan: ExecutionPlan) -> EngineResult:
        """Execute an :class:`~repro.core.plan.ExecutionPlan`, one pass per shard."""
        config = self.config
        timer = PhaseTimer(enabled=config.record_phases)
        wall = Timer().start()

        fused = config.fused_layers or not plan.has_layers
        shards = plan.shard_ranges(plan.n_shards or config.trial_shards)
        accumulator = ResultAccumulator.for_plan(plan)
        for trials in shards:
            if fused:
                event_ids, offsets = plan.yet.trial_window(trials.start, trials.stop)
                losses, max_occ = layer_trial_losses_batch(
                    (),
                    event_ids,
                    offsets,
                    plan.terms,
                    use_shortcut=config.use_aggregate_shortcut,
                    record_max_occurrence=config.record_max_occurrence,
                    timer=timer,
                    stack=plan.stack(timer),
                    row_map=plan.row_map,
                )
            else:
                losses, max_occ = _per_layer_losses(plan, trials, config, timer)
            accumulator.add(PartialResult(trials, losses, max_occ))

        return finalize_plan_result(
            plan,
            self.name,
            accumulator.year_losses(),
            accumulator.max_occurrence_losses(),
            wall.stop(),
            {"fused_layers": fused, "trial_shards": len(shards)},
            phase_breakdown=timer.breakdown() if config.record_phases else None,
        )


def _per_layer_losses(
    plan: ExecutionPlan, trials: TrialRange, config: EngineConfig, timer: PhaseTimer
) -> tuple[np.ndarray, np.ndarray | None]:
    """The ``fused_layers=False`` ablation: one kernel call per plan row."""
    event_ids, offsets = plan.yet.trial_window(trials.start, trials.stop)
    losses = np.zeros((plan.n_rows, trials.size), dtype=np.float64)
    max_occ = (
        np.zeros((plan.n_rows, trials.size), dtype=np.float64)
        if config.record_max_occurrence
        else None
    )
    for row, layer in enumerate(plan.layers):
        year_losses, trial_max = layer_trial_losses(
            layer.loss_matrix(),
            event_ids,
            offsets,
            layer.terms,
            use_shortcut=config.use_aggregate_shortcut,
            record_max_occurrence=config.record_max_occurrence,
            timer=timer,
        )
        losses[row] = year_losses
        if max_occ is not None and trial_max is not None:
            max_occ[row] = trial_max
    return losses, max_occ
