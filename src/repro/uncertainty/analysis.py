"""Replicated aggregate analysis under secondary uncertainty.

Each replication draws one realisation of every uncertain ELT, prices the
resulting layers over the Year Event Table and records the risk metrics.
Across replications the metrics form empirical distributions whose spread
quantifies how much of the answer is driven by the loss uncertainty rather
than by the event sequence uncertainty already captured in the YET.

Two execution strategies produce those replications:

* **batched** (:meth:`SecondaryUncertaintyAnalysis.run_batched`, the default
  method) — all ``R`` replications are sampled up front from per-replication
  child streams (:func:`~repro.utils.rng.spawn_rngs`), stacked into one
  ``(R * n_layers, catalog_size)`` fused loss stack and priced in a single
  stacked engine pass (:meth:`~repro.core.engine.AggregateRiskEngine.run_stacked`,
  which lowers the rows to a synthetic
  :class:`~repro.core.plan.ExecutionPlan` executed by the backend's plan
  scheduler) over the YET.  A streamed variant (``replication_block``) draws
  and prices blocks of replications so the chunked/multicore backends keep
  their bounded working set.
* **replay** (``method="replay"``) — the original per-replication loop: one
  full engine invocation per replication.  It consumes the *same*
  per-replication child streams, so with a fixed seed the two methods produce
  identical draws and (backend for backend) identical metrics; replay is the
  conformance oracle the batched path is tested against.

Example — a banded quote from the command line or from Python::

    are uncertainty --preset bench --replications 64 --cv 0.6

    analysis = SecondaryUncertaintyAnalysis(uncertain_layers)
    bands = analysis.run_batched(yet, n_replications=64, rng=2012)
    print(bands["aal"].low, bands["aal"].mean, bands["aal"].high)
    quote = analysis.quote(yet, n_replications=64, rng=2012)  # ProgramQuote
    print(quote.summary())                     # includes the AAL band
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Sequence

import numpy as np

from repro.core.config import EngineConfig
from repro.core.engine import AggregateRiskEngine
from repro.core.kernels import replication_portfolio_losses
from repro.core.plan import PlanBuilder
from repro.financial.policies import apply_financial_terms
from repro.financial.terms import LayerTerms, LayerTermsVectors
from repro.portfolio.layer import Layer
from repro.portfolio.pricing import ProgramQuote, price_program
from repro.portfolio.program import ReinsuranceProgram
from repro.uncertainty.table import UncertainEventLossTable
from repro.utils.rng import RNGLike, derive_rng, spawn_rngs
from repro.ylt.metrics import aal, pml, tvar
from repro.yet.table import YearEventTable

__all__ = ["UncertainLayer", "ReplicationSummary", "SecondaryUncertaintyAnalysis"]


@dataclass(frozen=True)
class UncertainLayer:
    """A layer whose ELTs carry loss distributions."""

    elts: Sequence[UncertainEventLossTable]
    terms: LayerTerms
    name: str = ""

    def __post_init__(self) -> None:
        if not self.elts:
            raise ValueError("an uncertain layer must cover at least one ELT")
        catalog_sizes = {elt.catalog_size for elt in self.elts}
        if len(catalog_sizes) != 1:
            raise ValueError("all ELTs of a layer must share one catalog size")

    @property
    def n_elts(self) -> int:
        """Number of uncertain ELTs the layer covers."""
        return len(self.elts)

    @property
    def catalog_size(self) -> int:
        """Size of the event catalog the layer's ELTs refer to."""
        return self.elts[0].catalog_size

    def expected_layer(self) -> Layer:
        """The layer built from the expected (mean) losses."""
        return Layer([elt.expected_elt() for elt in self.elts], self.terms, name=self.name)

    def sample_layer(self, rng: RNGLike = None) -> Layer:
        """One realisation of the layer's ELTs."""
        generator = derive_rng(rng)
        return Layer([elt.sample_elt(generator) for elt in self.elts], self.terms, name=self.name)

    def sample_net_row(self, rng: RNGLike = None, scratch: np.ndarray | None = None) -> np.ndarray:
        """One sampled realisation's combined term-netted dense loss row.

        Draws every ELT from ``rng`` in the same order as
        :meth:`sample_layer` and returns the ``(catalog_size,)`` loss vector
        net of the per-ELT financial terms, combined across the layer's ELTs
        — bit-identical to building the sampled
        :class:`~repro.portfolio.layer.Layer` and asking its loss matrix for
        :meth:`~repro.elt.combined.LayerLossMatrix.combined_net_losses`.
        The terms are applied to the sampled *records* and scatter-added in
        ELT order rather than via the dense ``(n_elts, catalog_size)``
        matrix: zero entries net to exactly zero under the financial terms
        and the dense ELT-axis reduction is sequential in ELT order, so the
        sparse path reproduces the dense bits at ``O(records)`` cost per
        replication instead of ``O(n_elts * catalog_size)`` — the saving
        that makes batched replication sampling cheap.  ``scratch`` may
        supply a reusable ``(catalog_size,)`` buffer.
        """
        generator = derive_rng(rng)
        if scratch is None:
            scratch = np.zeros(self.catalog_size, dtype=np.float64)
        else:
            if scratch.shape != (self.catalog_size,):
                raise ValueError(
                    f"scratch shape {scratch.shape} does not match ({self.catalog_size},)"
                )
            scratch.fill(0.0)
        for elt in self.elts:
            net = apply_financial_terms(elt.sample_losses(generator), elt.terms)
            scratch[elt.event_ids] += net
        return scratch


@dataclass(frozen=True)
class ReplicationSummary:
    """Distribution of a risk metric across replications.

    Attributes
    ----------
    mean, std:
        Moments of the metric over replications.
    low, high:
        The 5th and 95th percentiles over replications.
    values:
        The raw per-replication values.
    """

    mean: float
    std: float
    low: float
    high: float
    values: np.ndarray

    @classmethod
    def from_values(cls, values: Sequence[float]) -> "ReplicationSummary":
        array = np.asarray(values, dtype=np.float64)
        if array.size == 0:
            raise ValueError("cannot summarise zero replications")
        return cls(
            mean=float(array.mean()),
            std=float(array.std(ddof=1)) if array.size > 1 else 0.0,
            low=float(np.percentile(array, 5.0)),
            high=float(np.percentile(array, 95.0)),
            values=array,
        )

    def relative_spread(self) -> float:
        """(p95 - p5) / mean; zero when the mean is zero."""
        if self.mean == 0.0:
            return 0.0
        return (self.high - self.low) / self.mean


class SecondaryUncertaintyAnalysis:
    """Replicated aggregate analysis over uncertain layers.

    :meth:`run_batched` is the production path: it samples every replication
    from its own child stream, stacks all sampled realisations into fused
    rows and prices them in one stacked engine pass over the YET (optionally
    streaming blocks of replications).  ``method="replay"`` runs the same
    draws through one engine invocation per replication and serves as the
    conformance oracle.  :meth:`run` is the legacy loop drawing from a single
    shared stream (kept for backward-compatible seeds).

    Parameters
    ----------
    layers:
        The uncertain layers forming the program.
    config:
        Engine configuration for each replication (vectorized by default).
        ``config.replication_block`` sets the default streaming block size of
        :meth:`run_batched`.
    engine:
        An existing engine to price replications on instead of constructing
        one from ``config`` — the :class:`~repro.service.service.RiskService`
        passes its *warm* engine here so banded quotes share the service's
        retained workspaces.  When given, its config wins over ``config``.
    """

    def __init__(self, layers: Sequence[UncertainLayer],
                 config: EngineConfig | None = None,
                 engine: "AggregateRiskEngine | None" = None) -> None:
        if not layers:
            raise ValueError("at least one uncertain layer is required")
        self.layers = tuple(layers)
        catalog_sizes = {layer.catalog_size for layer in self.layers}
        if len(catalog_sizes) != 1:
            raise ValueError(
                f"all uncertain layers must share one catalog size, got {sorted(catalog_sizes)}"
            )
        if engine is not None:
            self.config = engine.config
        else:
            self.config = config if config is not None else EngineConfig(
                backend="vectorized", record_max_occurrence=False
            )
        self._engine = engine

    @property
    def engine(self) -> AggregateRiskEngine:
        """The engine every replication is priced on (built lazily once)."""
        if self._engine is None:
            self._engine = AggregateRiskEngine(self.config)
        return self._engine

    @property
    def n_layers(self) -> int:
        """Number of uncertain layers in the program."""
        return len(self.layers)

    @property
    def catalog_size(self) -> int:
        """Size of the event catalog shared by every layer."""
        return self.layers[0].catalog_size

    def expected_program(self) -> ReinsuranceProgram:
        """The program built from expected losses (no secondary uncertainty)."""
        return ReinsuranceProgram(
            [layer.expected_layer() for layer in self.layers], name="expected"
        )

    # ------------------------------------------------------------------ #
    # Metric bookkeeping shared by every execution strategy
    # ------------------------------------------------------------------ #
    @staticmethod
    def _metric_names(return_periods: Sequence[float],
                      tvar_levels: Sequence[float]) -> List[str]:
        names = ["aal"]
        names.extend(f"pml_{rp:g}" for rp in return_periods)
        names.extend(f"tvar_{level:g}" for level in tvar_levels)
        return names

    @staticmethod
    def _collect_metrics(store: Mapping[str, list], portfolio_losses: np.ndarray,
                         return_periods: Sequence[float],
                         tvar_levels: Sequence[float]) -> None:
        store["aal"].append(aal(portfolio_losses))
        for return_period in return_periods:
            store[f"pml_{return_period:g}"].append(pml(portfolio_losses, return_period))
        for level in tvar_levels:
            store[f"tvar_{level:g}"].append(tvar(portfolio_losses, level))

    # ------------------------------------------------------------------ #
    # Replication engines
    # ------------------------------------------------------------------ #
    def run_batched(
        self,
        yet: YearEventTable,
        n_replications: int,
        rng: RNGLike = None,
        return_periods: Sequence[float] = (100.0, 250.0),
        tvar_levels: Sequence[float] = (0.99,),
        method: str = "batched",
        replication_block: int | None = None,
        trial_shards: int = 0,
    ) -> Dict[str, ReplicationSummary]:
        """Run the replicated analysis through the fused batch engine.

        Every replication ``r`` draws from child stream ``r`` of ``rng``
        (:func:`~repro.utils.rng.spawn_rngs`), so the draws — and therefore
        the metrics — do not depend on the execution strategy, the streaming
        block size or the backend's worker count.

        Parameters
        ----------
        method:
            ``"batched"`` (default) stacks all replications of every layer
            into ``R * n_layers`` fused rows and prices them in one stacked
            engine pass per replication block.  ``"replay"`` runs one full
            engine invocation per replication on the same draws — the
            conformance oracle.
        replication_block:
            Replications sampled and priced per fused pass (batched method
            only).  Defaults to ``config.replication_block``; ``0`` or
            ``None`` there means all replications in a single pass.
        trial_shards:
            Execute each engine pass as this many exactly-merged trial
            shards (``0`` = the engine config's ``trial_shards``), bounding
            the fused gather to one shard's events.  Sharding never moves a
            bit, so the bands are unchanged by it.

        Returns a mapping with keys ``"aal"``, ``"pml_<rp>"`` and
        ``"tvar_<level>"`` describing the distribution of each metric across
        replications.
        """
        if n_replications <= 0:
            raise ValueError(f"n_replications must be positive, got {n_replications}")
        if method not in ("batched", "replay"):
            raise ValueError(f"method must be 'batched' or 'replay', got {method!r}")
        n_replications = int(n_replications)
        rngs = spawn_rngs(rng, n_replications)
        metric_values: Dict[str, list] = {
            name: [] for name in self._metric_names(return_periods, tvar_levels)
        }
        engine = self.engine

        if method == "replay":
            for replication_rng in rngs:
                program = ReinsuranceProgram(
                    [layer.sample_layer(replication_rng) for layer in self.layers],
                    name="replication",
                )
                result = engine.run_plan(
                    PlanBuilder.from_program(program, yet, n_shards=trial_shards)
                )
                self._collect_metrics(
                    metric_values, result.ylt.portfolio_losses(), return_periods, tvar_levels
                )
        else:
            if replication_block is None:
                replication_block = self.config.replication_block
            block = int(replication_block) if replication_block else n_replications
            if block <= 0:
                raise ValueError(f"replication_block must be positive, got {block}")
            block = min(block, n_replications)

            n_layers = self.n_layers
            terms_vectors = LayerTermsVectors.from_terms(
                [layer.terms for layer in self.layers]
            )
            # One reusable catalog-sized scratch: every sampled row is built
            # in it and copied into the block's stack, so the streamed
            # working set is the block's stack plus a single row buffer.
            scratch = np.zeros(self.catalog_size, dtype=np.float64)
            stack = np.empty((block * n_layers, self.catalog_size), dtype=np.float64)
            for start in range(0, n_replications, block):
                stop = min(start + block, n_replications)
                block_size = stop - start
                for index, replication_rng in enumerate(rngs[start:stop]):
                    for layer_index, layer in enumerate(self.layers):
                        stack[index * n_layers + layer_index] = layer.sample_net_row(
                            replication_rng, scratch=scratch
                        )
                result = engine.run_stacked(
                    stack[: block_size * n_layers],
                    terms_vectors.tile(block_size),
                    yet,
                    n_shards=trial_shards,
                )
                portfolio = replication_portfolio_losses(result.ylt.losses, n_layers)
                for row in portfolio:
                    self._collect_metrics(metric_values, row, return_periods, tvar_levels)

        return {name: ReplicationSummary.from_values(values)
                for name, values in metric_values.items()}

    def run(
        self,
        yet: YearEventTable,
        n_replications: int,
        rng: RNGLike = None,
        return_periods: Sequence[float] = (100.0, 250.0),
        tvar_levels: Sequence[float] = (0.99,),
    ) -> Dict[str, ReplicationSummary]:
        """Legacy replicated analysis drawing from one shared stream.

        All replications consume the single generator derived from ``rng``
        sequentially (so seeds from before the batched engine existed keep
        their meaning).  New code should prefer :meth:`run_batched`, which
        gives every replication its own child stream and prices all of them
        in one fused pass.

        Returns a mapping with keys ``"aal"``, ``"pml_<rp>"`` and
        ``"tvar_<level>"`` describing the distribution of each metric across
        replications.
        """
        if n_replications <= 0:
            raise ValueError(f"n_replications must be positive, got {n_replications}")
        generator = derive_rng(rng)
        engine = self.engine
        metric_values: Dict[str, list] = {
            name: [] for name in self._metric_names(return_periods, tvar_levels)
        }
        for _ in range(int(n_replications)):
            program = ReinsuranceProgram(
                [layer.sample_layer(generator) for layer in self.layers], name="replication"
            )
            result = engine.run(program, yet)
            self._collect_metrics(
                metric_values, result.ylt.portfolio_losses(), return_periods, tvar_levels
            )
        return {name: ReplicationSummary.from_values(values)
                for name, values in metric_values.items()}

    # ------------------------------------------------------------------ #
    # Deterministic reference & banded quoting
    # ------------------------------------------------------------------ #
    def expected_metrics(
        self,
        yet: YearEventTable,
        return_periods: Sequence[float] = (100.0, 250.0),
    ) -> Mapping[str, float]:
        """Metrics of the expected-loss (deterministic) analysis, for comparison."""
        engine = self.engine
        result = engine.run(self.expected_program(), yet)
        portfolio_losses = result.ylt.portfolio_losses()
        metrics: Dict[str, float] = {"aal": aal(portfolio_losses)}
        for return_period in return_periods:
            metrics[f"pml_{return_period:g}"] = pml(portfolio_losses, return_period)
        return metrics

    def quote(
        self,
        yet: YearEventTable,
        n_replications: int,
        rng: RNGLike = None,
        volatility_loading: float = 0.3,
        expense_ratio: float = 0.15,
        return_periods: Sequence[float] = (100.0, 250.0),
        tvar_levels: Sequence[float] = (0.99,),
        method: str = "batched",
        replication_block: int | None = None,
    ) -> ProgramQuote:
        """Banded quote: expected-loss pricing plus replication bands.

        Prices the expected (mean-loss) program the standard way and attaches
        the :meth:`run_batched` metric distributions, so the quote carries
        both the technical premium and how far secondary uncertainty moves
        the portfolio metrics (e.g. ``quote.band("aal").relative_spread()``).
        """
        program = self.expected_program()
        engine = self.engine
        result = engine.run(program, yet)
        uncertainty = self.run_batched(
            yet,
            n_replications,
            rng=rng,
            return_periods=return_periods,
            tvar_levels=tvar_levels,
            method=method,
            replication_block=replication_block,
        )
        return price_program(
            program,
            result.ylt,
            volatility_loading=volatility_loading,
            expense_ratio=expense_ratio,
            uncertainty=uncertainty,
        )
