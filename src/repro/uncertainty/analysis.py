"""Replicated aggregate analysis under secondary uncertainty.

Each replication draws one realisation of every uncertain ELT, rebuilds the
layers, runs the (deterministic) aggregate analysis and records the risk
metrics.  Across replications the metrics form empirical distributions whose
spread quantifies how much of the answer is driven by the loss uncertainty
rather than by the event sequence uncertainty already captured in the YET.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Sequence

import numpy as np

from repro.core.config import EngineConfig
from repro.core.engine import AggregateRiskEngine
from repro.financial.terms import LayerTerms
from repro.portfolio.layer import Layer
from repro.portfolio.program import ReinsuranceProgram
from repro.uncertainty.table import UncertainEventLossTable
from repro.utils.rng import RNGLike, derive_rng
from repro.ylt.metrics import aal, pml, tvar
from repro.yet.table import YearEventTable

__all__ = ["UncertainLayer", "ReplicationSummary", "SecondaryUncertaintyAnalysis"]


@dataclass(frozen=True)
class UncertainLayer:
    """A layer whose ELTs carry loss distributions."""

    elts: Sequence[UncertainEventLossTable]
    terms: LayerTerms
    name: str = ""

    def __post_init__(self) -> None:
        if not self.elts:
            raise ValueError("an uncertain layer must cover at least one ELT")
        catalog_sizes = {elt.catalog_size for elt in self.elts}
        if len(catalog_sizes) != 1:
            raise ValueError("all ELTs of a layer must share one catalog size")

    def expected_layer(self) -> Layer:
        """The layer built from the expected (mean) losses."""
        return Layer([elt.expected_elt() for elt in self.elts], self.terms, name=self.name)

    def sample_layer(self, rng: RNGLike = None) -> Layer:
        """One realisation of the layer's ELTs."""
        generator = derive_rng(rng)
        return Layer([elt.sample_elt(generator) for elt in self.elts], self.terms, name=self.name)


@dataclass(frozen=True)
class ReplicationSummary:
    """Distribution of a risk metric across replications.

    Attributes
    ----------
    mean, std:
        Moments of the metric over replications.
    low, high:
        The 5th and 95th percentiles over replications.
    values:
        The raw per-replication values.
    """

    mean: float
    std: float
    low: float
    high: float
    values: np.ndarray

    @classmethod
    def from_values(cls, values: Sequence[float]) -> "ReplicationSummary":
        array = np.asarray(values, dtype=np.float64)
        if array.size == 0:
            raise ValueError("cannot summarise zero replications")
        return cls(
            mean=float(array.mean()),
            std=float(array.std(ddof=1)) if array.size > 1 else 0.0,
            low=float(np.percentile(array, 5.0)),
            high=float(np.percentile(array, 95.0)),
            values=array,
        )

    def relative_spread(self) -> float:
        """(p95 - p5) / mean; zero when the mean is zero."""
        if self.mean == 0.0:
            return 0.0
        return (self.high - self.low) / self.mean


class SecondaryUncertaintyAnalysis:
    """Replicated aggregate analysis over uncertain layers.

    Parameters
    ----------
    layers:
        The uncertain layers forming the program.
    config:
        Engine configuration for each replication (vectorized by default).
    """

    def __init__(self, layers: Sequence[UncertainLayer],
                 config: EngineConfig | None = None) -> None:
        if not layers:
            raise ValueError("at least one uncertain layer is required")
        self.layers = tuple(layers)
        self.config = config if config is not None else EngineConfig(
            backend="vectorized", record_max_occurrence=False
        )

    def expected_program(self) -> ReinsuranceProgram:
        """The program built from expected losses (no secondary uncertainty)."""
        return ReinsuranceProgram(
            [layer.expected_layer() for layer in self.layers], name="expected"
        )

    def run(
        self,
        yet: YearEventTable,
        n_replications: int,
        rng: RNGLike = None,
        return_periods: Sequence[float] = (100.0, 250.0),
        tvar_levels: Sequence[float] = (0.99,),
    ) -> Dict[str, ReplicationSummary]:
        """Run the replicated analysis and summarise the portfolio metrics.

        Returns a mapping with keys ``"aal"``, ``"pml_<rp>"`` and
        ``"tvar_<level>"`` describing the distribution of each metric across
        replications.
        """
        if n_replications <= 0:
            raise ValueError(f"n_replications must be positive, got {n_replications}")
        generator = derive_rng(rng)
        engine = AggregateRiskEngine(self.config)

        metric_values: Dict[str, list] = {"aal": []}
        for return_period in return_periods:
            metric_values[f"pml_{return_period:g}"] = []
        for level in tvar_levels:
            metric_values[f"tvar_{level:g}"] = []

        for _ in range(int(n_replications)):
            program = ReinsuranceProgram(
                [layer.sample_layer(generator) for layer in self.layers], name="replication"
            )
            result = engine.run(program, yet)
            portfolio_losses = result.ylt.portfolio_losses()
            metric_values["aal"].append(aal(portfolio_losses))
            for return_period in return_periods:
                metric_values[f"pml_{return_period:g}"].append(pml(portfolio_losses, return_period))
            for level in tvar_levels:
                metric_values[f"tvar_{level:g}"].append(tvar(portfolio_losses, level))

        return {name: ReplicationSummary.from_values(values)
                for name, values in metric_values.items()}

    def expected_metrics(
        self,
        yet: YearEventTable,
        return_periods: Sequence[float] = (100.0, 250.0),
    ) -> Mapping[str, float]:
        """Metrics of the expected-loss (deterministic) analysis, for comparison."""
        engine = AggregateRiskEngine(self.config)
        result = engine.run(self.expected_program(), yet)
        portfolio_losses = result.ylt.portfolio_losses()
        metrics: Dict[str, float] = {"aal": aal(portfolio_losses)}
        for return_period in return_periods:
            metrics[f"pml_{return_period:g}"] = pml(portfolio_losses, return_period)
        return metrics
