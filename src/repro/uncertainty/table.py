"""Event Loss Tables with per-event loss distributions.

A standard ELT stores the *expected* loss of each event.  Real catastrophe
models also report the uncertainty of that loss ("secondary uncertainty"):
given that the event occurs, the loss to the exposure set is itself a random
variable.  :class:`UncertainEventLossTable` stores that distribution as a mean
and a coefficient of variation per event, with a configurable distribution
family, and can (a) collapse to a standard mean-loss ELT and (b) draw sampled
ELTs for replicated analyses.
"""

from __future__ import annotations

import enum
from typing import Iterable

import numpy as np

from repro.elt.table import EventLossTable
from repro.financial.terms import FinancialTerms
from repro.utils.arrays import as_float_array, as_int_array
from repro.utils.rng import RNGLike, derive_rng

__all__ = ["LossDistributionFamily", "UncertainEventLossTable", "MIN_SAMPLED_CV"]

#: Smallest coefficient of variation that is actually sampled.  Below this,
#: ``1 / cv**2`` (the gamma shape) overflows float64 and the draw would be
#: NaN; such records are deterministic to double precision anyway and are
#: pinned to their mean — the exact ``cv -> 0`` limit.
MIN_SAMPLED_CV: float = float(np.sqrt(np.finfo(np.float64).tiny))


class LossDistributionFamily(enum.Enum):
    """Distribution family of the per-event conditional loss."""

    GAMMA = "gamma"
    LOGNORMAL = "lognormal"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


class UncertainEventLossTable:
    """ELT whose records are loss distributions (mean, coefficient of variation).

    Parameters
    ----------
    event_ids:
        Event identifiers with non-zero expected loss.
    mean_losses:
        Expected loss per event (the value a standard ELT stores).
    cv_losses:
        Coefficient of variation of each event's conditional loss; zero means
        the loss is deterministic.
    catalog_size:
        Size of the catalog the ids refer to.
    family:
        Distribution family used when sampling.
    terms:
        Per-ELT financial terms (as for a standard ELT).
    name:
        Human-readable name.
    """

    def __init__(
        self,
        event_ids: np.ndarray | Iterable[int],
        mean_losses: np.ndarray | Iterable[float],
        cv_losses: np.ndarray | Iterable[float],
        catalog_size: int,
        family: LossDistributionFamily = LossDistributionFamily.GAMMA,
        terms: FinancialTerms | None = None,
        name: str = "",
    ) -> None:
        self.event_ids = as_int_array(np.asarray(list(event_ids) if not isinstance(event_ids, np.ndarray) else event_ids), "event_ids")
        self.mean_losses = as_float_array(np.asarray(list(mean_losses) if not isinstance(mean_losses, np.ndarray) else mean_losses), "mean_losses")
        self.cv_losses = as_float_array(np.asarray(list(cv_losses) if not isinstance(cv_losses, np.ndarray) else cv_losses), "cv_losses")
        if not (self.event_ids.shape[0] == self.mean_losses.shape[0] == self.cv_losses.shape[0]):
            raise ValueError("event_ids, mean_losses and cv_losses must have equal length")
        if catalog_size <= 0:
            raise ValueError(f"catalog_size must be positive, got {catalog_size}")
        if self.event_ids.size:
            if self.event_ids.min() < 0 or self.event_ids.max() >= catalog_size:
                raise ValueError("event ids must lie in [0, catalog_size)")
            if np.unique(self.event_ids).size != self.event_ids.size:
                raise ValueError("event ids must be unique")
        if np.any(self.mean_losses < 0) or np.any(~np.isfinite(self.mean_losses)):
            raise ValueError("mean_losses must be non-negative and finite")
        if np.any(self.cv_losses < 0) or np.any(~np.isfinite(self.cv_losses)):
            raise ValueError("cv_losses must be non-negative and finite")
        self.catalog_size = int(catalog_size)
        self.family = family
        self.terms = terms if terms is not None else FinancialTerms()
        self.name = str(name)

    # ------------------------------------------------------------------ #
    # Shape
    # ------------------------------------------------------------------ #
    @property
    def size(self) -> int:
        """Number of (event, distribution) records."""
        return int(self.event_ids.shape[0])

    def __len__(self) -> int:
        return self.size

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"UncertainEventLossTable(name={self.name!r}, size={self.size}, "
            f"family={self.family.value})"
        )

    # ------------------------------------------------------------------ #
    # Conversions
    # ------------------------------------------------------------------ #
    def expected_elt(self) -> EventLossTable:
        """Collapse to a standard mean-loss ELT (drops the uncertainty)."""
        return EventLossTable(
            self.event_ids, self.mean_losses, self.catalog_size, self.terms, self.name
        )

    def sample_losses(self, rng: RNGLike = None) -> np.ndarray:
        """Draw one realisation of every event's conditional loss.

        Events with zero coefficient of variation keep their mean loss; zero
        mean losses stay zero regardless of the CV.  Returns the sampled loss
        vector aligned with :attr:`event_ids`.  This is the single point at
        which the analysis consumes randomness: both the per-replication
        replay loop and the batched replication engine draw through it, so a
        shared child stream yields bit-identical realisations on either path.
        """
        generator = derive_rng(rng)
        means = self.mean_losses
        cvs = self.cv_losses
        sampled = means.copy()
        active = (cvs >= MIN_SAMPLED_CV) & (means > 0.0)
        if np.any(active):
            m = means[active]
            cv = cvs[active]
            if self.family is LossDistributionFamily.GAMMA:
                shape = 1.0 / (cv * cv)
                scale = m / shape
                sampled[active] = generator.gamma(shape, scale)
            elif self.family is LossDistributionFamily.LOGNORMAL:
                sigma = np.sqrt(np.log1p(cv * cv))
                mu = np.log(m) - 0.5 * sigma * sigma
                sampled[active] = generator.lognormal(mu, sigma)
            else:  # pragma: no cover - exhaustive enum
                raise ValueError(f"unknown family {self.family}")
        return sampled

    def sample_elt(self, rng: RNGLike = None) -> EventLossTable:
        """One realisation of the table as a standard :class:`EventLossTable`."""
        return EventLossTable(
            self.event_ids, self.sample_losses(rng), self.catalog_size, self.terms, self.name
        )

    @classmethod
    def from_elt(
        cls,
        elt: EventLossTable,
        cv: float | np.ndarray = 0.5,
        family: LossDistributionFamily = LossDistributionFamily.GAMMA,
    ) -> "UncertainEventLossTable":
        """Wrap a mean-loss ELT with a uniform (or per-event) uncertainty level."""
        if np.isscalar(cv):
            cvs = np.full(elt.size, float(cv), dtype=np.float64)
        else:
            cvs = np.asarray(cv, dtype=np.float64)
        return cls(
            elt.event_ids, elt.losses, cvs, elt.catalog_size, family, elt.terms, elt.name
        )
