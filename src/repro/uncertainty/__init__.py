"""Secondary uncertainty extension.

The paper's discussion (Section IV) notes: "The current financial calculations
can be implemented using basic arithmetic operations.  However, if the system
is extended to represent losses as a distribution (rather than a simple mean)
then the algorithm would likely benefit from use of a numerical library for
convolution."

This subpackage implements that extension in the Monte-Carlo style that the
aggregate analysis already uses: each ELT record carries a *distribution* of
the event loss (mean plus coefficient of variation, realised as a Gamma or
Lognormal distribution), and the analysis is repeated over independent
samplings of the event losses ("replications").  The spread of the resulting
Year Loss Tables quantifies the secondary uncertainty around every risk
metric.

* :class:`~repro.uncertainty.table.UncertainEventLossTable` — an ELT whose
  records are distributions;
* :class:`~repro.uncertainty.analysis.SecondaryUncertaintyAnalysis` — runs the
  replicated aggregate analysis and summarises metric distributions.  Its
  :meth:`~repro.uncertainty.analysis.SecondaryUncertaintyAnalysis.run_batched`
  engine samples all replications up front (one child stream per
  replication) and prices them as fused ``R x n_layers`` stack rows in a
  single stacked pass over the Year Event Table — an uncertainty band costs
  roughly one batched pricing call instead of ``R`` engine invocations.
"""

from repro.uncertainty.analysis import (
    ReplicationSummary,
    SecondaryUncertaintyAnalysis,
    UncertainLayer,
)
from repro.uncertainty.table import LossDistributionFamily, UncertainEventLossTable

__all__ = [
    "LossDistributionFamily",
    "UncertainEventLossTable",
    "UncertainLayer",
    "SecondaryUncertaintyAnalysis",
    "ReplicationSummary",
]
