"""repro — parallel aggregate risk analysis for catastrophe reinsurance portfolios.

A from-scratch Python reproduction of *Bahl, Baltzer, Rau-Chaplin & Varghese,
"Parallel Simulations for Analysing Portfolios of Catastrophic Event Risk"*
(SC 2012): the Aggregate Risk Engine (ARE) together with every substrate it
depends on — stochastic event catalogs, exposure databases, a catastrophe
model producing Event Loss Tables, Year Event Table simulation, financial and
layer contract terms, Year Loss Tables with PML/TVaR metrics, and parallel
execution backends (vectorized, chunked, multi-process and a simulated
many-core device).

Quickstart::

    from repro import AggregateRiskEngine, EngineConfig
    from repro.workloads import WorkloadGenerator, bench_spec

    workload = WorkloadGenerator(bench_spec()).generate()
    engine = AggregateRiskEngine(EngineConfig(backend="vectorized"))
    result = engine.run(workload.program, workload.yet)
    print(result.summary())

Serving deployments front the engine with the request/response layer of
:mod:`repro.service` instead — a warm engine plus a content-addressed cache
of lowered execution plans and fused loss stacks::

    from repro import AnalysisRequest, RiskService

    service = RiskService(EngineConfig(backend="vectorized"))
    service.register_program("renewal", workload.program)
    service.register_yet("renewal", workload.yet)
    response = service.submit({"kind": "run", "program": "renewal"})
    print(response.summary(), service.cache_stats().summary())

(CLI: ``are request`` for one JSON round trip, ``are serve`` for a warm
NDJSON request loop).

Every backend executes as a loop over disjoint *trial shards* whose partial
results merge exactly (``EngineConfig(trial_shards=8)``, ``plan.shard(n)``
+ :class:`~repro.core.results.ResultAccumulator`, a request's ``shards``
field, or ``are run --shards 8``); tables larger than RAM are priced
out-of-core through :class:`~repro.yet.io.YetShardReader` with resident
memory bounded by one shard.
"""

from repro.core.config import EngineConfig
from repro.core.engine import AggregateRiskEngine, available_backends
from repro.core.results import (
    EngineResult,
    MetricState,
    PartialResult,
    ResultAccumulator,
)
from repro.elt.table import EventLossTable
from repro.financial.terms import FinancialTerms, LayerTerms
from repro.portfolio.layer import Layer
from repro.portfolio.program import ReinsuranceProgram
from repro.service import (
    AnalysisRequest,
    AnalysisResponse,
    PlanCache,
    RequestValidationError,
    RiskService,
)
from repro.yet.table import YearEventTable
from repro.ylt.metrics import compute_risk_metrics
from repro.ylt.table import YearLossTable

__version__ = "1.1.0"

__all__ = [
    "__version__",
    "AggregateRiskEngine",
    "AnalysisRequest",
    "AnalysisResponse",
    "EngineConfig",
    "EngineResult",
    "MetricState",
    "PartialResult",
    "PlanCache",
    "ResultAccumulator",
    "RequestValidationError",
    "RiskService",
    "available_backends",
    "EventLossTable",
    "FinancialTerms",
    "LayerTerms",
    "Layer",
    "ReinsuranceProgram",
    "YearEventTable",
    "YearLossTable",
    "compute_risk_metrics",
]
