"""The catastrophe model: (catalog, exposure set) -> Event Loss Table.

The model is vectorised over events by pre-aggregating the exposure portfolio
into a ``(n_regions, n_construction_classes)`` matrix of insured value.  For an
event with site intensity ``i_r`` in region ``r``, the expected loss is

``sum_{r, c} value[r, c] * mdr_c(i_r * intensity_scale)``

optionally scaled so that the largest catalog events reproduce the peril's
mean severity on an industry-wide exposure.  Only events whose footprint
touches a region where the portfolio holds value contribute a non-zero loss,
which produces ELTs that are sparse relative to the full catalog — exactly the
structure the paper's direct-access-table discussion assumes (e.g. ~20 K
non-zero records against a 2 M-event catalog).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.catalog.events import EventCatalog
from repro.elt.table import EventLossTable
from repro.exposure.building import ConstructionClass
from repro.exposure.portfolio import ExposurePortfolio
from repro.financial.terms import FinancialTerms
from repro.hazard.intensity import FootprintModel, RegionalFootprintModel
from repro.hazard.vulnerability import VulnerabilityModel, default_vulnerability_model
from repro.utils.validation import ensure_positive

__all__ = ["CatastropheModel", "CatModelSettings"]


@dataclass(frozen=True)
class CatModelSettings:
    """Tunable parameters of the catastrophe model.

    Attributes
    ----------
    loss_threshold:
        Expected losses below this value are dropped from the ELT (real cat
        models apply a similar reporting threshold); this is what keeps the
        ELTs sparse.
    intensity_scale:
        Multiplier applied to footprint intensities before the vulnerability
        curves (a crude site-hazard modifier).
    demand_surge:
        Post-event demand-surge multiplier applied to all losses (>= 1).
    """

    loss_threshold: float = 1.0
    intensity_scale: float = 1.0
    demand_surge: float = 1.0

    def __post_init__(self) -> None:
        if self.loss_threshold < 0:
            raise ValueError(f"loss_threshold must be non-negative, got {self.loss_threshold}")
        ensure_positive(self.intensity_scale, "intensity_scale")
        if self.demand_surge < 1.0:
            raise ValueError(f"demand_surge must be >= 1, got {self.demand_surge}")


class CatastropheModel:
    """Produces Event Loss Tables from a catalog and exposure portfolios."""

    def __init__(
        self,
        catalog: EventCatalog,
        n_regions: int,
        footprint_model: FootprintModel | None = None,
        vulnerability_model: VulnerabilityModel | None = None,
        settings: CatModelSettings | None = None,
    ) -> None:
        if n_regions <= 0:
            raise ValueError(f"n_regions must be positive, got {n_regions}")
        self.catalog = catalog
        self.n_regions = int(n_regions)
        self.footprint_model = footprint_model or RegionalFootprintModel()
        self.vulnerability_model = vulnerability_model or default_vulnerability_model()
        self.settings = settings or CatModelSettings()
        # (n_events, n_regions) site intensities; computed once per model.
        self._intensity = self.footprint_model.intensity_matrix(catalog, self.n_regions)
        if self._intensity.shape != (catalog.size, self.n_regions):
            raise ValueError(
                "footprint model returned matrix of shape "
                f"{self._intensity.shape}, expected {(catalog.size, self.n_regions)}"
            )

    # ------------------------------------------------------------------ #
    # Exposure aggregation
    # ------------------------------------------------------------------ #
    def _exposure_value_matrix(self, portfolio: ExposurePortfolio) -> np.ndarray:
        """Aggregate the portfolio into an (n_regions, n_constructions) value matrix.

        Site-level coverage participation is applied as a value scaling; the
        site deductible is ignored at this aggregated level (it is second-order
        for portfolio-level expected losses and keeps the model linear).
        """
        order = tuple(ConstructionClass)
        matrix = np.zeros((self.n_regions, len(order)), dtype=np.float64)
        regions = np.clip(portfolio.regions, 0, self.n_regions - 1)
        effective_value = portfolio.replacement_values * portfolio.participations
        np.add.at(matrix, (regions, portfolio.construction_codes.astype(np.int64)), effective_value)
        return matrix

    # ------------------------------------------------------------------ #
    # ELT generation
    # ------------------------------------------------------------------ #
    def event_losses(self, portfolio: ExposurePortfolio) -> np.ndarray:
        """Expected loss of every catalog event against ``portfolio`` (dense)."""
        order = tuple(ConstructionClass)
        value_matrix = self._exposure_value_matrix(portfolio)  # (R, C)
        losses = np.zeros(self.catalog.size, dtype=np.float64)
        # Only regions with exposure contribute.
        active_regions = np.nonzero(value_matrix.sum(axis=1) > 0.0)[0]
        if active_regions.size == 0:
            return losses
        for region in active_regions:
            intensities = self._intensity[:, region] * self.settings.intensity_scale
            affected = np.nonzero(intensities > 0.0)[0]
            if affected.size == 0:
                continue
            damage = self.vulnerability_model.damage_matrix(intensities[affected], order)
            losses[affected] += damage @ value_matrix[region]
        losses *= self.settings.demand_surge
        return losses

    def generate_elt(
        self,
        portfolio: ExposurePortfolio,
        terms: FinancialTerms | None = None,
        name: str | None = None,
    ) -> EventLossTable:
        """Run the model for one exposure set and return its ELT."""
        losses = self.event_losses(portfolio)
        mask = losses > self.settings.loss_threshold
        event_ids = np.nonzero(mask)[0].astype(np.int64)
        return EventLossTable(
            event_ids=event_ids,
            losses=losses[mask],
            catalog_size=self.catalog.size,
            terms=terms,
            name=name if name is not None else portfolio.name,
        )

    def generate_elts(
        self,
        portfolios: list[ExposurePortfolio],
        terms: FinancialTerms | None = None,
    ) -> list[EventLossTable]:
        """Run the model for several exposure sets."""
        return [self.generate_elt(portfolio, terms) for portfolio in portfolios]
