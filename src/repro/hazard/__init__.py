"""Catastrophe model substrate: hazard intensity + vulnerability -> ELT.

Stage 1 of the analytical pipeline (Section I of the paper): "Each
event-exposure pair is then analysed by a risk model that quantifies the
hazard intensity at the exposure site, the vulnerability of the building and
resulting damage level, and the resultant expected loss, given the customer's
financial terms.  The output of a catastrophe model is an Event Loss Table."

This subpackage implements that stage with deliberately simple but structurally
faithful components:

* :mod:`repro.hazard.intensity` — per-event hazard footprints: which regions an
  event touches and with what site-level intensity attenuation;
* :mod:`repro.hazard.vulnerability` — damage-ratio curves per construction
  class (mean damage ratio as a function of hazard intensity);
* :mod:`repro.hazard.catmodel` — the :class:`CatastropheModel` that combines a
  catalog, a footprint model and vulnerability curves with an exposure
  portfolio to produce an :class:`~repro.elt.table.EventLossTable`.
"""

from repro.hazard.catmodel import CatastropheModel
from repro.hazard.intensity import FootprintModel, RegionalFootprintModel
from repro.hazard.vulnerability import (
    VulnerabilityCurve,
    VulnerabilityModel,
    default_vulnerability_model,
)

__all__ = [
    "FootprintModel",
    "RegionalFootprintModel",
    "VulnerabilityCurve",
    "VulnerabilityModel",
    "default_vulnerability_model",
    "CatastropheModel",
]
