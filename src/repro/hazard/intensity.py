"""Hazard intensity footprints.

A *footprint* describes where an event's hazard is felt and how strongly.  The
full physical footprint of a real catastrophe model (a wind field, a ground
motion field, a flood depth raster) is replaced here by a regional footprint:
each event affects its primary region at full intensity and neighbouring
regions at an attenuated intensity.  This preserves the two structural
properties the aggregate analysis cares about:

* only a subset of catalog events produces loss for a given exposure set
  (ELT sparsity), and
* exposure sets in the same region share events (loss correlation between
  ELTs of a layer).
"""

from __future__ import annotations

import abc

import numpy as np

from repro.catalog.events import EventCatalog
from repro.utils.validation import ensure_in_range

__all__ = ["FootprintModel", "RegionalFootprintModel"]


class FootprintModel(abc.ABC):
    """Abstract mapping from (event, region) to site hazard intensity."""

    @abc.abstractmethod
    def intensity_matrix(self, catalog: EventCatalog, n_regions: int) -> np.ndarray:
        """Return an ``(n_events, n_regions)`` matrix of site intensities.

        Entry ``(e, r)`` is the hazard intensity event ``e`` produces at sites
        in region ``r`` (0 when the event does not affect the region).
        """


class RegionalFootprintModel(FootprintModel):
    """Footprints defined on the coarse region grid.

    Parameters
    ----------
    spill_fraction:
        Intensity attenuation factor for the two neighbouring regions
        (region id +/- 1); 0 confines every event to its primary region.
    intensity_floor:
        Minimum intensity assigned to an affected region (keeps damage ratios
        away from exactly zero for affected exposures).
    """

    def __init__(self, spill_fraction: float = 0.3, intensity_floor: float = 0.02) -> None:
        ensure_in_range(spill_fraction, 0.0, 1.0, "spill_fraction")
        ensure_in_range(intensity_floor, 0.0, 1.0, "intensity_floor")
        self.spill_fraction = float(spill_fraction)
        self.intensity_floor = float(intensity_floor)

    def intensity_matrix(self, catalog: EventCatalog, n_regions: int) -> np.ndarray:
        if n_regions <= 0:
            raise ValueError(f"n_regions must be positive, got {n_regions}")
        n_events = catalog.size
        matrix = np.zeros((n_events, n_regions), dtype=np.float64)
        if n_events == 0:
            return matrix
        regions = np.clip(catalog.regions, 0, n_regions - 1)
        base = np.maximum(catalog.intensities, self.intensity_floor)
        rows = np.arange(n_events)
        matrix[rows, regions] = base
        if self.spill_fraction > 0.0 and n_regions > 1:
            left = np.clip(regions - 1, 0, n_regions - 1)
            right = np.clip(regions + 1, 0, n_regions - 1)
            spill = self.spill_fraction * base
            # Use np.maximum.at so events whose neighbours coincide with the
            # primary region (at the grid edge) do not overwrite the full
            # intensity with the attenuated one.
            np.maximum.at(matrix, (rows, left), spill)
            np.maximum.at(matrix, (rows, right), spill)
            matrix[rows, regions] = base
        return matrix

    def affected_regions(self, catalog: EventCatalog, n_regions: int) -> list[np.ndarray]:
        """For each event, the array of region ids it affects."""
        matrix = self.intensity_matrix(catalog, n_regions)
        return [np.nonzero(matrix[e] > 0.0)[0] for e in range(catalog.size)]
