"""Direct access table: the paper's ELT representation of choice.

A direct access table is "a highly sparse representation of an ELT, one that
provides very fast lookup performance at the cost of high memory usage"
(Section III-B).  It is simply a dense float array of length ``catalog_size``
whose index is the event id; events absent from the ELT hold a loss of zero.
A lookup is a single array access, which is exactly one memory access — the
minimum possible — at the cost of storing mostly-zero data (e.g. 20 K non-zero
losses in a 2 M-element array).
"""

from __future__ import annotations

import numpy as np

from repro.elt.table import EventLossTable, LossLookup

__all__ = ["DirectAccessTable"]


class DirectAccessTable(LossLookup):
    """Dense event-id-indexed loss array with O(1) lookups."""

    def __init__(self, elt: EventLossTable) -> None:
        self._catalog_size = elt.catalog_size
        self._dense = elt.dense_losses()
        self._n_records = elt.size
        self.terms = elt.terms
        self.name = elt.name

    # ------------------------------------------------------------------ #
    # LossLookup interface
    # ------------------------------------------------------------------ #
    @property
    def catalog_size(self) -> int:
        return self._catalog_size

    @property
    def n_records(self) -> int:
        """Number of non-zero loss records the table was built from."""
        return self._n_records

    def lookup(self, event_id: int) -> float:
        if not 0 <= event_id < self._catalog_size:
            raise IndexError(f"event_id {event_id} out of range [0, {self._catalog_size})")
        return float(self._dense[event_id])

    def lookup_many(self, event_ids: np.ndarray) -> np.ndarray:
        ids = np.asarray(event_ids)
        if ids.size and (ids.min() < 0 or ids.max() >= self._catalog_size):
            raise IndexError("event ids out of range of the catalog")
        return self._dense[ids]

    @property
    def memory_bytes(self) -> int:
        return int(self._dense.nbytes)

    # ------------------------------------------------------------------ #
    # Extra accessors used by the vectorized backends
    # ------------------------------------------------------------------ #
    @property
    def dense(self) -> np.ndarray:
        """The underlying dense loss vector (read-only view)."""
        view = self._dense.view()
        view.flags.writeable = False
        return view

    @property
    def density(self) -> float:
        """Fraction of entries that are non-zero."""
        if self._catalog_size == 0:
            return 0.0
        return self._n_records / self._catalog_size

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DirectAccessTable(catalog_size={self._catalog_size}, "
            f"records={self._n_records}, memory={self.memory_bytes / 1e6:.1f} MB)"
        )
