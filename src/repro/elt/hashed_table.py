"""Hash-table ELT lookup.

The paper mentions constant-time space-efficient hashing (cuckoo hashing) as a
third alternative and dismisses it for GPUs because of "considerable
implementation and run-time performance complexity".  For completeness — and
for the ablation benchmark comparing lookup structures on the CPU — this
module provides a hash-based lookup with an open-addressing table sized to a
configurable load factor, plus a plain-``dict`` fallback used for scalar
lookups.

The open-addressing table is implemented with NumPy arrays (keys and values)
and linear probing, so vectorised batch lookups remain possible (each probe
round is a vectorised gather), mimicking how a GPU implementation would have
to iterate probe rounds in lock-step across a warp.
"""

from __future__ import annotations

import numpy as np

from repro.elt.table import EventLossTable, LossLookup

__all__ = ["HashedEventLossTable"]

_EMPTY = np.int64(-1)


class HashedEventLossTable(LossLookup):
    """Open-addressing hash table keyed by event id."""

    def __init__(self, elt: EventLossTable, load_factor: float = 0.5) -> None:
        if not 0.0 < load_factor < 1.0:
            raise ValueError(f"load_factor must be in (0, 1), got {load_factor}")
        self._catalog_size = elt.catalog_size
        self.terms = elt.terms
        self.name = elt.name
        self._n_records = elt.size
        n_slots = 8
        while n_slots * load_factor < max(elt.size, 1):
            n_slots *= 2
        self._n_slots = n_slots
        self._mask = n_slots - 1
        self._keys = np.full(n_slots, _EMPTY, dtype=np.int64)
        self._values = np.zeros(n_slots, dtype=np.float64)
        self._max_probes = 1
        for event_id, loss in zip(elt.event_ids, elt.losses):
            self._insert(int(event_id), float(loss))

    # ------------------------------------------------------------------ #
    # Hashing
    # ------------------------------------------------------------------ #
    @staticmethod
    def _hash(keys: np.ndarray | int) -> np.ndarray | int:
        """Fibonacci (multiplicative) hashing of 64-bit keys."""
        if isinstance(keys, np.ndarray):
            with np.errstate(over="ignore"):
                return (keys.astype(np.uint64) * np.uint64(0x9E3779B97F4A7C15)) >> np.uint64(32)
        return ((int(keys) * 0x9E3779B97F4A7C15) & 0xFFFFFFFFFFFFFFFF) >> 32

    def _insert(self, event_id: int, loss: float) -> None:
        slot = self._hash(event_id) & self._mask
        probes = 1
        while self._keys[slot] != _EMPTY:
            if self._keys[slot] == event_id:
                raise ValueError(f"duplicate event id {event_id}")
            slot = (slot + 1) & self._mask
            probes += 1
        self._keys[slot] = event_id
        self._values[slot] = loss
        self._max_probes = max(self._max_probes, probes)

    # ------------------------------------------------------------------ #
    # LossLookup interface
    # ------------------------------------------------------------------ #
    @property
    def catalog_size(self) -> int:
        return self._catalog_size

    @property
    def n_records(self) -> int:
        """Number of stored (event, loss) records."""
        return self._n_records

    @property
    def n_slots(self) -> int:
        """Number of slots in the open-addressing table."""
        return self._n_slots

    @property
    def max_probes(self) -> int:
        """Worst-case probe chain length observed during construction."""
        return self._max_probes

    def lookup(self, event_id: int) -> float:
        if not 0 <= event_id < self._catalog_size:
            raise IndexError(f"event_id {event_id} out of range [0, {self._catalog_size})")
        slot = self._hash(event_id) & self._mask
        for _ in range(self._max_probes):
            key = self._keys[slot]
            if key == event_id:
                return float(self._values[slot])
            if key == _EMPTY:
                return 0.0
            slot = (slot + 1) & self._mask
        return 0.0

    def lookup_many(self, event_ids: np.ndarray) -> np.ndarray:
        ids = np.asarray(event_ids, dtype=np.int64)
        if ids.size and (ids.min() < 0 or ids.max() >= self._catalog_size):
            raise IndexError("event ids out of range of the catalog")
        result = np.zeros(ids.shape, dtype=np.float64)
        if ids.size == 0 or self._n_records == 0:
            return result
        slots = (self._hash(ids) & np.uint64(self._mask)).astype(np.int64)
        unresolved = np.ones(ids.shape, dtype=bool)
        # Lock-step probe rounds: all unresolved lookups advance one probe at a
        # time, the vectorised analogue of warp-synchronous probing on a GPU.
        for _ in range(self._max_probes):
            if not unresolved.any():
                break
            keys = self._keys[slots]
            hit = unresolved & (keys == ids)
            result[hit] = self._values[slots[hit]]
            miss_empty = unresolved & (keys == _EMPTY)
            unresolved &= ~(hit | miss_empty)
            slots = (slots + 1) & self._mask
        return result

    @property
    def memory_bytes(self) -> int:
        return int(self._keys.nbytes + self._values.nbytes)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"HashedEventLossTable(records={self._n_records}, slots={self._n_slots}, "
            f"max_probes={self._max_probes})"
        )
