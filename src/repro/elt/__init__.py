"""Event Loss Table (ELT) data structures.

An ELT maps event ids to expected losses for one exposure set, together with
the per-ELT financial terms ``I``.  Section III-B of the paper discusses the
choice of lookup structure at length, because the aggregate analysis is
dominated (78 % of runtime, Fig. 6b) by random lookups into the ELTs:

* **direct access table** — a dense array of length ``catalog_size`` indexed by
  event id: one memory access per lookup, very sparse (e.g. 20 K non-zero
  entries out of 2 M), the paper's choice;
* **sorted table** — event ids kept sorted, binary search per lookup
  (``O(log n)`` accesses);
* **hashed table** — hash map with (amortised) constant-time lookups but
  pointer-chasing access patterns.

All three are implemented here with a common interface so the ablation
benchmark can compare them, plus :class:`~repro.elt.combined.LayerLossMatrix`,
the dense ``n_elts x catalog_size`` matrix the vectorized backends gather from.
"""

from repro.elt.combined import LayerLossMatrix
from repro.elt.direct_access import DirectAccessTable
from repro.elt.hashed_table import HashedEventLossTable
from repro.elt.sorted_table import SortedEventLossTable
from repro.elt.stats import elt_statistics, ELTStatistics
from repro.elt.table import EventLossTable, LossLookup

__all__ = [
    "EventLossTable",
    "LossLookup",
    "DirectAccessTable",
    "SortedEventLossTable",
    "HashedEventLossTable",
    "LayerLossMatrix",
    "ELTStatistics",
    "elt_statistics",
]
