"""Layer-level combined ELT storage.

The paper's example: "if a layer has 15 ELTs, then 15 x 2 million = 30 million
event-loss pairs are generated in memory" — i.e. the layer's ELTs are held as
a stack of direct access tables.  :class:`LayerLossMatrix` is exactly that
stack: a dense ``(n_elts, catalog_size)`` float64 matrix together with the
per-ELT financial-term vectors, laid out so that the vectorized backends can
gather the losses of every trial event from every ELT in a single fancy-index
operation.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.elt.table import EventLossTable
from repro.financial.policies import apply_financial_terms_matrix

__all__ = ["LayerLossMatrix"]


class LayerLossMatrix:
    """Dense per-layer loss matrix plus vectorised per-ELT financial terms.

    Parameters
    ----------
    elts:
        The Event Loss Tables covered by a layer (3–30 in practice).

    Attributes
    ----------
    losses:
        ``(n_elts, catalog_size)`` dense float64 matrix of expected losses.
    retentions, limits, shares:
        Per-ELT financial-term vectors of length ``n_elts`` (the components of
        ``I`` applied to each event loss extracted from the corresponding ELT).
    """

    def __init__(self, elts: Sequence[EventLossTable]) -> None:
        if not elts:
            raise ValueError("a layer must cover at least one ELT")
        catalog_sizes = {elt.catalog_size for elt in elts}
        if len(catalog_sizes) != 1:
            raise ValueError(
                f"all ELTs of a layer must share one catalog size, got {sorted(catalog_sizes)}"
            )
        self.catalog_size = catalog_sizes.pop()
        self.n_elts = len(elts)
        self.names = tuple(elt.name for elt in elts)

        self.losses = np.zeros((self.n_elts, self.catalog_size), dtype=np.float64)
        retentions = np.zeros(self.n_elts, dtype=np.float64)
        limits = np.zeros(self.n_elts, dtype=np.float64)
        shares = np.zeros(self.n_elts, dtype=np.float64)
        fx = np.zeros(self.n_elts, dtype=np.float64)
        for row, elt in enumerate(elts):
            self.losses[row, elt.event_ids] = elt.losses
            terms = elt.terms
            retentions[row] = terms.retention
            limits[row] = terms.limit
            shares[row] = terms.share
            fx[row] = terms.fx_rate
        self.retentions = retentions
        self.limits = limits
        self.shares = shares
        self.fx_rates = fx
        self._n_records = int(sum(elt.size for elt in elts))
        self._combined_net: np.ndarray | None = None

    # ------------------------------------------------------------------ #
    # Accessors
    # ------------------------------------------------------------------ #
    @property
    def n_records(self) -> int:
        """Total number of non-zero (event, loss) records across the ELTs."""
        return self._n_records

    @property
    def memory_bytes(self) -> int:
        """Memory footprint of the dense loss matrix plus term vectors."""
        return int(
            self.losses.nbytes
            + self.retentions.nbytes
            + self.limits.nbytes
            + self.shares.nbytes
            + self.fx_rates.nbytes
        )

    def gather(self, event_ids: np.ndarray) -> np.ndarray:
        """Gather the losses of ``event_ids`` from every ELT.

        Returns an ``(n_elts, len(event_ids))`` matrix — the vectorised
        equivalent of the basic algorithm's lines 3–5 (per-event ELT lookups).
        """
        ids = np.asarray(event_ids)
        if ids.size and (ids.min() < 0 or ids.max() >= self.catalog_size):
            raise IndexError("event ids out of range of the catalog")
        return self.losses[:, ids]

    def ground_up_event_losses(self, event_ids: np.ndarray) -> np.ndarray:
        """Per-event ground-up losses summed over ELTs (no financial terms)."""
        return self.gather(event_ids).sum(axis=0)

    def combined_net_losses(self) -> np.ndarray:
        """Per-catalog-entry losses net of financial terms, combined across ELTs.

        Because the per-ELT financial terms ``I`` depend only on the dense
        loss value (never on the trial), they can be applied to the catalog
        axis *once* instead of to every gathered occurrence; the resulting
        ``(catalog_size,)`` vector is what the fused multi-layer kernel
        gathers from.  Computed lazily and cached (read-only view returned).
        """
        if self._combined_net is None:
            net = apply_financial_terms_matrix(
                self.losses, self.retentions, self.limits, self.shares, self.fx_rates
            )
            self._combined_net = net.sum(axis=0)
            self._combined_net.flags.writeable = False
        return self._combined_net

    def row(self, index: int) -> np.ndarray:
        """Dense loss vector of the ``index``-th ELT (read-only view)."""
        view = self.losses[index].view()
        view.flags.writeable = False
        return view

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"LayerLossMatrix(n_elts={self.n_elts}, catalog_size={self.catalog_size}, "
            f"records={self._n_records}, memory={self.memory_bytes / 1e6:.1f} MB)"
        )
