"""Sorted-array ELT lookup with binary search.

This is the "compact representation" alternative the paper argues against:
the (event id, loss) pairs are kept sorted by event id and each lookup costs
``O(log n)`` memory accesses via binary search.  Memory usage is proportional
to the number of non-zero records rather than the catalog size, so it wins on
space and loses on lookup latency — the ablation benchmark quantifies the
trade-off.
"""

from __future__ import annotations

import numpy as np

from repro.elt.table import EventLossTable, LossLookup

__all__ = ["SortedEventLossTable"]


class SortedEventLossTable(LossLookup):
    """Sorted (event id, loss) pairs with binary-search lookups."""

    def __init__(self, elt: EventLossTable) -> None:
        order = np.argsort(elt.event_ids, kind="stable")
        self._event_ids = np.ascontiguousarray(elt.event_ids[order])
        self._losses = np.ascontiguousarray(elt.losses[order])
        self._catalog_size = elt.catalog_size
        self.terms = elt.terms
        self.name = elt.name

    @property
    def catalog_size(self) -> int:
        return self._catalog_size

    @property
    def n_records(self) -> int:
        """Number of stored (event, loss) records."""
        return int(self._event_ids.shape[0])

    def lookup(self, event_id: int) -> float:
        if not 0 <= event_id < self._catalog_size:
            raise IndexError(f"event_id {event_id} out of range [0, {self._catalog_size})")
        pos = int(np.searchsorted(self._event_ids, event_id))
        if pos < self._event_ids.shape[0] and self._event_ids[pos] == event_id:
            return float(self._losses[pos])
        return 0.0

    def lookup_many(self, event_ids: np.ndarray) -> np.ndarray:
        ids = np.asarray(event_ids)
        if ids.size and (ids.min() < 0 or ids.max() >= self._catalog_size):
            raise IndexError("event ids out of range of the catalog")
        if self._event_ids.size == 0:
            return np.zeros(ids.shape, dtype=np.float64)
        pos = np.searchsorted(self._event_ids, ids)
        pos = np.minimum(pos, self._event_ids.shape[0] - 1)
        found = self._event_ids[pos] == ids
        result = np.where(found, self._losses[pos], 0.0)
        return result.astype(np.float64, copy=False)

    @property
    def memory_bytes(self) -> int:
        return int(self._event_ids.nbytes + self._losses.nbytes)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SortedEventLossTable(records={self.n_records}, "
            f"catalog_size={self._catalog_size})"
        )
