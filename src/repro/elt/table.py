"""The Event Loss Table record container and lookup interface.

``EventLossTable`` is the canonical, storage-agnostic representation: parallel
arrays of event ids and expected losses plus the ELT-level financial terms.
The concrete lookup structures (direct access / sorted / hashed) are built
*from* an ``EventLossTable`` and expose the :class:`LossLookup` interface used
by the engine backends.
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING, Iterable, Iterator, Mapping, Tuple

import numpy as np

from repro.utils.arrays import as_float_array, as_int_array

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.financial.terms import FinancialTerms

__all__ = ["EventLossTable", "LossLookup"]


class LossLookup(abc.ABC):
    """Interface of an event-id -> loss lookup structure."""

    @property
    @abc.abstractmethod
    def catalog_size(self) -> int:
        """Number of event ids addressable by the lookup (catalog size)."""

    @abc.abstractmethod
    def lookup(self, event_id: int) -> float:
        """Expected loss for a single event id (0.0 if the event is not in the ELT)."""

    @abc.abstractmethod
    def lookup_many(self, event_ids: np.ndarray) -> np.ndarray:
        """Vectorised lookup for an array of event ids."""

    @property
    @abc.abstractmethod
    def memory_bytes(self) -> int:
        """Approximate memory footprint of the structure in bytes."""


class EventLossTable:
    """Canonical ELT: sparse (event id, expected loss) pairs plus terms.

    Parameters
    ----------
    event_ids:
        Event identifiers with non-zero expected loss (need not be sorted;
        duplicates are rejected).
    losses:
        Expected loss per event id (same length as ``event_ids``).
    catalog_size:
        Size of the event catalog the ids refer to; ids must be < this value.
    terms:
        Per-ELT financial terms ``I`` (retention, limit, share, currency).
        ``None`` means pass-through terms.
    name:
        Optional human-readable name (e.g. the cedant / exposure-set name).
    """

    def __init__(
        self,
        event_ids: np.ndarray | Iterable[int],
        losses: np.ndarray | Iterable[float],
        catalog_size: int,
        terms: "FinancialTerms | None" = None,
        name: str = "",
    ) -> None:
        self.event_ids = as_int_array(np.asarray(list(event_ids) if not isinstance(event_ids, np.ndarray) else event_ids), "event_ids")
        self.losses = as_float_array(np.asarray(list(losses) if not isinstance(losses, np.ndarray) else losses), "losses")
        if self.event_ids.shape[0] != self.losses.shape[0]:
            raise ValueError(
                f"event_ids and losses must have equal length, got "
                f"{self.event_ids.shape[0]} and {self.losses.shape[0]}"
            )
        if catalog_size <= 0:
            raise ValueError(f"catalog_size must be positive, got {catalog_size}")
        self.catalog_size = int(catalog_size)
        if self.event_ids.size:
            if self.event_ids.min() < 0 or self.event_ids.max() >= self.catalog_size:
                raise ValueError("event ids must lie in [0, catalog_size)")
            unique = np.unique(self.event_ids)
            if unique.size != self.event_ids.size:
                raise ValueError("event ids must be unique within an ELT")
        if np.any(self.losses < 0):
            raise ValueError("losses must be non-negative")
        if np.any(~np.isfinite(self.losses)):
            raise ValueError("losses must be finite")
        if terms is None:
            from repro.financial.terms import FinancialTerms  # local import, avoids cycle

            terms = FinancialTerms()
        self.terms = terms
        self.name = str(name)

    # ------------------------------------------------------------------ #
    # Container protocol
    # ------------------------------------------------------------------ #
    @property
    def size(self) -> int:
        """Number of (event, loss) records in the ELT."""
        return int(self.event_ids.shape[0])

    def __len__(self) -> int:
        return self.size

    def __iter__(self) -> Iterator[Tuple[int, float]]:
        for i in range(self.size):
            yield int(self.event_ids[i]), float(self.losses[i])

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"EventLossTable(name={self.name!r}, size={self.size}, "
            f"catalog_size={self.catalog_size})"
        )

    # ------------------------------------------------------------------ #
    # Derived quantities
    # ------------------------------------------------------------------ #
    @property
    def density(self) -> float:
        """Fraction of catalog events with a non-zero loss in this ELT."""
        return self.size / self.catalog_size

    def as_dict(self) -> Mapping[int, float]:
        """Plain ``dict`` view {event_id: loss} (copies the data)."""
        return {int(e): float(l) for e, l in zip(self.event_ids, self.losses)}

    def sorted_copy(self) -> "EventLossTable":
        """Return a copy with records sorted by event id."""
        order = np.argsort(self.event_ids, kind="stable")
        return EventLossTable(
            self.event_ids[order],
            self.losses[order],
            self.catalog_size,
            self.terms,
            self.name,
        )

    def dense_losses(self) -> np.ndarray:
        """Dense loss vector of length ``catalog_size`` (the direct access layout)."""
        dense = np.zeros(self.catalog_size, dtype=np.float64)
        dense[self.event_ids] = self.losses
        return dense

    @classmethod
    def from_dict(
        cls,
        losses_by_event: Mapping[int, float],
        catalog_size: int,
        terms: "FinancialTerms | None" = None,
        name: str = "",
    ) -> "EventLossTable":
        """Build an ELT from a {event_id: loss} mapping, dropping zero losses."""
        items = [(int(e), float(l)) for e, l in losses_by_event.items() if l != 0.0]
        items.sort()
        if items:
            ids, losses = zip(*items)
        else:
            ids, losses = (), ()
        return cls(
            np.array(ids, dtype=np.int64),
            np.array(losses, dtype=np.float64),
            catalog_size,
            terms,
            name,
        )
