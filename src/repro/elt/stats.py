"""Per-ELT summary statistics.

These are the standard catastrophe-model outputs an analyst inspects before
running the aggregate analysis: expected annual loss contribution, loss
percentiles, and largest single-event losses.  They also give tests a cheap
way to validate that the synthetic catastrophe model produces sensible ELTs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.elt.table import EventLossTable

__all__ = ["ELTStatistics", "elt_statistics"]


@dataclass(frozen=True)
class ELTStatistics:
    """Summary statistics of one Event Loss Table.

    Attributes
    ----------
    n_records:
        Number of events with non-zero expected loss.
    density:
        ``n_records / catalog_size``.
    total_loss:
        Sum of expected losses over all events (the unweighted loss mass).
    mean_loss, max_loss, min_loss:
        Moments and extremes of the non-zero expected losses.
    loss_percentiles:
        (p50, p90, p99) of the non-zero expected losses.
    """

    n_records: int
    density: float
    total_loss: float
    mean_loss: float
    max_loss: float
    min_loss: float
    loss_percentiles: tuple[float, float, float]

    def format_summary(self) -> str:
        """One-line human-readable summary."""
        p50, p90, p99 = self.loss_percentiles
        return (
            f"records={self.n_records} density={self.density:.2e} "
            f"total={self.total_loss:.3e} mean={self.mean_loss:.3e} "
            f"p50={p50:.3e} p90={p90:.3e} p99={p99:.3e} max={self.max_loss:.3e}"
        )


def elt_statistics(elt: EventLossTable) -> ELTStatistics:
    """Compute :class:`ELTStatistics` for one ELT."""
    losses = elt.losses
    if losses.size == 0:
        return ELTStatistics(
            n_records=0,
            density=0.0,
            total_loss=0.0,
            mean_loss=0.0,
            max_loss=0.0,
            min_loss=0.0,
            loss_percentiles=(0.0, 0.0, 0.0),
        )
    percentiles = np.percentile(losses, [50.0, 90.0, 99.0])
    return ELTStatistics(
        n_records=elt.size,
        density=elt.density,
        total_loss=float(losses.sum()),
        mean_loss=float(losses.mean()),
        max_loss=float(losses.max()),
        min_loss=float(losses.min()),
        loss_percentiles=(float(percentiles[0]), float(percentiles[1]), float(percentiles[2])),
    )
