"""Synthetic exposure-set generation.

Real exposure databases are proprietary; the generator here produces synthetic
exposure portfolios with the structural properties that matter to the
aggregate analysis workload:

* each portfolio concentrates in one "home" region with a configurable spill
  into neighbouring regions — this is what makes the resulting ELTs *sparse*
  relative to the global catalog (only events touching the portfolio's regions
  produce non-zero losses);
* replacement values follow a heavy-tailed (lognormal) distribution;
* construction/occupancy mixes are configurable, driving the vulnerability
  differences between portfolios.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np

from repro.exposure.building import Building, ConstructionClass, CoverageTerms, OccupancyType
from repro.exposure.geography import RegionGrid
from repro.exposure.portfolio import ExposurePortfolio
from repro.utils.rng import RNGLike, derive_rng
from repro.utils.validation import ensure_in_range, ensure_positive

__all__ = ["ExposureGenerator", "ExposureProfile"]


@dataclass(frozen=True)
class ExposureProfile:
    """Tunable shape of a synthetic exposure set."""

    mean_value: float = 2.5e6
    value_cv: float = 2.0
    home_region_share: float = 0.8
    construction_mix: Mapping[ConstructionClass, float] = field(
        default_factory=lambda: {
            ConstructionClass.WOOD_FRAME: 0.35,
            ConstructionClass.MASONRY: 0.25,
            ConstructionClass.REINFORCED_CONCRETE: 0.20,
            ConstructionClass.STEEL_FRAME: 0.10,
            ConstructionClass.LIGHT_METAL: 0.07,
            ConstructionClass.MOBILE_HOME: 0.03,
        }
    )
    occupancy_mix: Mapping[OccupancyType, float] = field(
        default_factory=lambda: {
            OccupancyType.RESIDENTIAL: 0.6,
            OccupancyType.COMMERCIAL: 0.25,
            OccupancyType.INDUSTRIAL: 0.1,
            OccupancyType.PUBLIC: 0.05,
        }
    )
    site_deductible_fraction: float = 0.01
    site_limit_fraction: float = 1.0

    def __post_init__(self) -> None:
        ensure_positive(self.mean_value, "mean_value")
        ensure_positive(self.value_cv, "value_cv")
        ensure_in_range(self.home_region_share, 0.0, 1.0, "home_region_share")
        ensure_in_range(self.site_deductible_fraction, 0.0, 1.0, "site_deductible_fraction")
        ensure_in_range(self.site_limit_fraction, 0.0, 1.0, "site_limit_fraction")
        for name, mix in (("construction_mix", self.construction_mix),
                          ("occupancy_mix", self.occupancy_mix)):
            if not mix:
                raise ValueError(f"{name} must not be empty")
            if any(w < 0 for w in mix.values()) or sum(mix.values()) <= 0:
                raise ValueError(f"{name} weights must be non-negative and not all zero")


class ExposureGenerator:
    """Generates synthetic :class:`~repro.exposure.portfolio.ExposurePortfolio` objects."""

    def __init__(self, grid: RegionGrid | None = None,
                 profile: ExposureProfile | None = None) -> None:
        self.grid = grid if grid is not None else RegionGrid()
        self.profile = profile if profile is not None else ExposureProfile()

    def _sample_codes(self, mix: Mapping, order: Sequence, count: int,
                      rng: np.random.Generator) -> np.ndarray:
        weights = np.array([float(mix.get(member, 0.0)) for member in order], dtype=np.float64)
        weights = weights / weights.sum()
        return rng.choice(len(order), size=count, p=weights)

    def generate(
        self,
        name: str,
        n_buildings: int,
        home_region: int | None = None,
        rng: RNGLike = None,
    ) -> ExposurePortfolio:
        """Generate one exposure set of ``n_buildings`` buildings.

        Parameters
        ----------
        name:
            Name of the resulting portfolio (typically the cedant name).
        n_buildings:
            Number of buildings to generate.
        home_region:
            Region the portfolio concentrates in; a random region if ``None``.
        rng:
            Seed or generator for reproducibility.
        """
        ensure_positive(n_buildings, "n_buildings")
        generator = derive_rng(rng)
        profile = self.profile
        n_regions = self.grid.size
        if home_region is None:
            home_region = int(generator.integers(0, n_regions))
        if not 0 <= home_region < n_regions:
            raise ValueError(f"home_region {home_region} out of range [0, {n_regions})")

        # Region assignment: home region share, remainder spilling into the
        # adjacent regions only.  Restricting the spill keeps the exposure
        # geographically concentrated, which is what makes the resulting ELT
        # sparse relative to the global catalog.
        in_home = generator.random(n_buildings) < profile.home_region_share
        regions = np.full(n_buildings, home_region, dtype=np.int64)
        n_out = int((~in_home).sum())
        if n_out and n_regions > 1:
            neighbours = [r for r in (home_region - 1, home_region + 1) if 0 <= r < n_regions]
            regions[~in_home] = generator.choice(neighbours, size=n_out)

        # Heavy-tailed replacement values.
        sigma = np.sqrt(np.log1p(profile.value_cv**2))
        mu = np.log(profile.mean_value) - 0.5 * sigma**2
        values = generator.lognormal(mu, sigma, size=n_buildings)

        construction_order = tuple(ConstructionClass)
        occupancy_order = tuple(OccupancyType)
        construction_codes = self._sample_codes(
            profile.construction_mix, construction_order, n_buildings, generator
        )
        occupancy_codes = self._sample_codes(
            profile.occupancy_mix, occupancy_order, n_buildings, generator
        )

        buildings = []
        for i in range(n_buildings):
            region = self.grid[int(regions[i])]
            lat = generator.uniform(region.lat_min, region.lat_max)
            lon = generator.uniform(region.lon_min, region.lon_max)
            value = float(values[i])
            coverage = CoverageTerms(
                deductible=profile.site_deductible_fraction * value,
                limit=profile.site_limit_fraction * value,
                participation=1.0,
            )
            buildings.append(
                Building(
                    building_id=i,
                    latitude=float(lat),
                    longitude=float(lon),
                    region=int(regions[i]),
                    construction=construction_order[int(construction_codes[i])],
                    occupancy=occupancy_order[int(occupancy_codes[i])],
                    replacement_value=value,
                    coverage=coverage,
                )
            )
        return ExposurePortfolio(name, buildings)

    def generate_many(
        self,
        count: int,
        n_buildings: int,
        rng: RNGLike = None,
        name_prefix: str = "cedant",
    ) -> list[ExposurePortfolio]:
        """Generate ``count`` independent exposure sets.

        Home regions cycle round-robin over the grid so that the resulting
        ELTs cover different, partially overlapping slices of the catalog —
        the same structural property a real multi-cedant book has.
        """
        ensure_positive(count, "count")
        generator = derive_rng(rng)
        portfolios = []
        for i in range(count):
            portfolios.append(
                self.generate(
                    name=f"{name_prefix}-{i:04d}",
                    n_buildings=n_buildings,
                    home_region=i % self.grid.size,
                    rng=generator,
                )
            )
        return portfolios
