"""Exposure portfolio container.

An :class:`ExposurePortfolio` is one *exposure set*: the collection of insured
buildings whose losses a single Event Loss Table summarises.  A reinsurer's
cedants each contribute one (or several) such exposure sets; the paper's
aggregate analysis covers ~10,000 ELTs, i.e. ~10,000 exposure sets.

The portfolio keeps both row-wise :class:`~repro.exposure.building.Building`
records (for inspection and small-scale use) and column-wise NumPy arrays
(for the vectorised catastrophe model).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Sequence

import numpy as np

from repro.exposure.building import Building, ConstructionClass, OccupancyType

__all__ = ["ExposurePortfolio"]


class ExposurePortfolio:
    """A named collection of insured buildings (one exposure set)."""

    def __init__(self, name: str, buildings: Sequence[Building]) -> None:
        if not name:
            raise ValueError("portfolio name must be non-empty")
        self.name = str(name)
        self._buildings: List[Building] = list(buildings)
        ids = [b.building_id for b in self._buildings]
        if len(set(ids)) != len(ids):
            raise ValueError("building ids must be unique within a portfolio")

        n = len(self._buildings)
        self.replacement_values = np.array(
            [b.replacement_value for b in self._buildings], dtype=np.float64
        )
        self.regions = np.array([b.region for b in self._buildings], dtype=np.int32)
        construction_order = tuple(ConstructionClass)
        occupancy_order = tuple(OccupancyType)
        self.construction_order = construction_order
        self.occupancy_order = occupancy_order
        self.construction_codes = np.array(
            [construction_order.index(b.construction) for b in self._buildings],
            dtype=np.int16,
        )
        self.occupancy_codes = np.array(
            [occupancy_order.index(b.occupancy) for b in self._buildings], dtype=np.int16
        )
        self.deductibles = np.array(
            [b.coverage.deductible for b in self._buildings], dtype=np.float64
        )
        self.limits = np.array([b.coverage.limit for b in self._buildings], dtype=np.float64)
        self.participations = np.array(
            [b.coverage.participation for b in self._buildings], dtype=np.float64
        )
        self.latitudes = np.array([b.latitude for b in self._buildings], dtype=np.float64)
        self.longitudes = np.array([b.longitude for b in self._buildings], dtype=np.float64)
        assert self.replacement_values.shape[0] == n

    # ------------------------------------------------------------------ #
    # Container protocol
    # ------------------------------------------------------------------ #
    @property
    def size(self) -> int:
        """Number of buildings in the portfolio."""
        return len(self._buildings)

    def __len__(self) -> int:
        return self.size

    def __iter__(self) -> Iterator[Building]:
        return iter(self._buildings)

    def __getitem__(self, index: int) -> Building:
        return self._buildings[index]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ExposurePortfolio(name={self.name!r}, size={self.size}, "
            f"tiv={self.total_insured_value:.3e})"
        )

    # ------------------------------------------------------------------ #
    # Aggregates
    # ------------------------------------------------------------------ #
    @property
    def total_insured_value(self) -> float:
        """Sum of replacement values (TIV) across the portfolio."""
        return float(self.replacement_values.sum())

    def value_by_region(self) -> Dict[int, float]:
        """Total insured value per geographic region."""
        result: Dict[int, float] = {}
        for region in np.unique(self.regions):
            mask = self.regions == region
            result[int(region)] = float(self.replacement_values[mask].sum())
        return result

    def value_by_construction(self) -> Dict[ConstructionClass, float]:
        """Total insured value per construction class."""
        result: Dict[ConstructionClass, float] = {}
        for code, construction in enumerate(self.construction_order):
            mask = self.construction_codes == code
            if np.any(mask):
                result[construction] = float(self.replacement_values[mask].sum())
        return result

    def regions_present(self) -> np.ndarray:
        """Sorted array of region ids with at least one building."""
        return np.unique(self.regions)

    def region_value_fractions(self) -> Dict[int, float]:
        """Fraction of TIV in each region (sums to 1)."""
        tiv = self.total_insured_value
        if tiv <= 0:
            raise ValueError("portfolio has zero total insured value")
        return {region: value / tiv for region, value in self.value_by_region().items()}

    def subset_by_region(self, region: int) -> "ExposurePortfolio":
        """A new portfolio containing only the buildings in ``region``."""
        buildings = [b for b in self._buildings if b.region == region]
        return ExposurePortfolio(f"{self.name}/region{region}", buildings)
