"""Minimal geography model: regions on a latitude/longitude grid.

Both the catalog generator and the exposure generator tag their outputs with
integer region ids.  A region here is a rectangular lat/lon cell of a coarse
global grid; it is deliberately simple — the role of geography in this
reproduction is only to create realistic *overlap structure* between exposure
sets and catalog events (which controls ELT sparsity), not to model physical
hazard propagation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator, List, Tuple

from repro.utils.validation import ensure_in_range

__all__ = ["Region", "RegionGrid", "haversine_km"]

_EARTH_RADIUS_KM = 6371.0088


def haversine_km(lat1: float, lon1: float, lat2: float, lon2: float) -> float:
    """Great-circle distance in kilometres between two points in degrees."""
    ensure_in_range(lat1, -90.0, 90.0, "lat1")
    ensure_in_range(lat2, -90.0, 90.0, "lat2")
    ensure_in_range(lon1, -180.0, 180.0, "lon1")
    ensure_in_range(lon2, -180.0, 180.0, "lon2")
    phi1, phi2 = math.radians(lat1), math.radians(lat2)
    dphi = math.radians(lat2 - lat1)
    dlmb = math.radians(lon2 - lon1)
    a = math.sin(dphi / 2.0) ** 2 + math.cos(phi1) * math.cos(phi2) * math.sin(dlmb / 2.0) ** 2
    return 2.0 * _EARTH_RADIUS_KM * math.asin(min(1.0, math.sqrt(a)))


@dataclass(frozen=True)
class Region:
    """A rectangular latitude/longitude cell.

    Attributes
    ----------
    region_id:
        Dense integer id of the region.
    lat_min, lat_max, lon_min, lon_max:
        Bounding box in decimal degrees.
    """

    region_id: int
    lat_min: float
    lat_max: float
    lon_min: float
    lon_max: float

    def __post_init__(self) -> None:
        if self.region_id < 0:
            raise ValueError(f"region_id must be non-negative, got {self.region_id}")
        ensure_in_range(self.lat_min, -90.0, 90.0, "lat_min")
        ensure_in_range(self.lat_max, -90.0, 90.0, "lat_max")
        ensure_in_range(self.lon_min, -180.0, 180.0, "lon_min")
        ensure_in_range(self.lon_max, -180.0, 180.0, "lon_max")
        if self.lat_max <= self.lat_min:
            raise ValueError("lat_max must exceed lat_min")
        if self.lon_max <= self.lon_min:
            raise ValueError("lon_max must exceed lon_min")

    @property
    def centroid(self) -> Tuple[float, float]:
        """(latitude, longitude) of the cell centre."""
        return (
            0.5 * (self.lat_min + self.lat_max),
            0.5 * (self.lon_min + self.lon_max),
        )

    def contains(self, latitude: float, longitude: float) -> bool:
        """Whether the point lies inside the region (inclusive bounds)."""
        return (
            self.lat_min <= latitude <= self.lat_max
            and self.lon_min <= longitude <= self.lon_max
        )


class RegionGrid:
    """A coarse global grid of ``n_lat x n_lon`` rectangular regions."""

    def __init__(self, n_lat: int = 2, n_lon: int = 4,
                 lat_range: Tuple[float, float] = (-60.0, 75.0),
                 lon_range: Tuple[float, float] = (-180.0, 180.0)) -> None:
        if n_lat <= 0 or n_lon <= 0:
            raise ValueError("n_lat and n_lon must be positive")
        lat_lo, lat_hi = lat_range
        lon_lo, lon_hi = lon_range
        if lat_hi <= lat_lo or lon_hi <= lon_lo:
            raise ValueError("ranges must be non-degenerate (hi > lo)")
        self.n_lat = int(n_lat)
        self.n_lon = int(n_lon)
        self._regions: List[Region] = []
        dlat = (lat_hi - lat_lo) / n_lat
        dlon = (lon_hi - lon_lo) / n_lon
        region_id = 0
        for i in range(n_lat):
            for j in range(n_lon):
                self._regions.append(
                    Region(
                        region_id=region_id,
                        lat_min=lat_lo + i * dlat,
                        lat_max=lat_lo + (i + 1) * dlat,
                        lon_min=lon_lo + j * dlon,
                        lon_max=lon_lo + (j + 1) * dlon,
                    )
                )
                region_id += 1

    @property
    def size(self) -> int:
        """Total number of regions in the grid."""
        return len(self._regions)

    def __len__(self) -> int:
        return self.size

    def __iter__(self) -> Iterator[Region]:
        return iter(self._regions)

    def __getitem__(self, region_id: int) -> Region:
        if not 0 <= region_id < self.size:
            raise IndexError(f"region_id {region_id} out of range [0, {self.size})")
        return self._regions[region_id]

    def locate(self, latitude: float, longitude: float) -> Region:
        """Return the region containing the given point.

        Points outside the grid bounds are clamped to the nearest cell, so
        every coordinate maps to some region.
        """
        ensure_in_range(latitude, -90.0, 90.0, "latitude")
        ensure_in_range(longitude, -180.0, 180.0, "longitude")
        first = self._regions[0]
        last = self._regions[-1]
        lat_lo, lat_hi = first.lat_min, last.lat_max
        lon_lo, lon_hi = first.lon_min, last.lon_max
        dlat = (lat_hi - lat_lo) / self.n_lat
        dlon = (lon_hi - lon_lo) / self.n_lon
        i = min(max(int((latitude - lat_lo) / dlat), 0), self.n_lat - 1)
        j = min(max(int((longitude - lon_lo) / dlon), 0), self.n_lon - 1)
        return self._regions[i * self.n_lon + j]
