"""Exposure database substrate.

An *exposure database* "describes thousands or millions of buildings to be
analysed, their construction types, location, value, use, and coverage"
(Section I).  The catastrophe model pairs each catalog event with an exposure
set to produce an Event Loss Table.

This subpackage provides the building/site records, portfolio containers, a
simple geography model (regions on a lat/lon grid) and a synthetic exposure
generator used by the workload presets.
"""

from repro.exposure.building import (
    Building,
    ConstructionClass,
    CoverageTerms,
    OccupancyType,
)
from repro.exposure.generator import ExposureGenerator
from repro.exposure.geography import Region, RegionGrid, haversine_km
from repro.exposure.portfolio import ExposurePortfolio

__all__ = [
    "Building",
    "ConstructionClass",
    "OccupancyType",
    "CoverageTerms",
    "ExposurePortfolio",
    "Region",
    "RegionGrid",
    "haversine_km",
    "ExposureGenerator",
]
