"""Building-level exposure records.

Each insured building (or "risk") is described by its construction class,
occupancy, location, replacement value and site-level coverage terms.  The
vulnerability module maps hazard intensity to a damage ratio as a function of
the construction class; the coverage terms cap the recoverable site loss.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.utils.validation import ensure_in_range, ensure_non_negative, ensure_positive

__all__ = ["ConstructionClass", "OccupancyType", "CoverageTerms", "Building"]


class ConstructionClass(enum.Enum):
    """Coarse construction classes with distinct vulnerability behaviour."""

    WOOD_FRAME = "wood_frame"
    MASONRY = "masonry"
    REINFORCED_CONCRETE = "reinforced_concrete"
    STEEL_FRAME = "steel_frame"
    LIGHT_METAL = "light_metal"
    MOBILE_HOME = "mobile_home"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


class OccupancyType(enum.Enum):
    """Occupancy / use of the building (affects contents and time-element loss)."""

    RESIDENTIAL = "residential"
    COMMERCIAL = "commercial"
    INDUSTRIAL = "industrial"
    AGRICULTURAL = "agricultural"
    PUBLIC = "public"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class CoverageTerms:
    """Site-level (primary-insurance) coverage terms.

    Attributes
    ----------
    deductible:
        Amount of loss retained by the policyholder per occurrence.
    limit:
        Maximum amount payable per occurrence (``inf`` = unlimited).
    participation:
        Insurer's share of the loss between deductible and limit (co-insurance).
    """

    deductible: float = 0.0
    limit: float = float("inf")
    participation: float = 1.0

    def __post_init__(self) -> None:
        ensure_non_negative(self.deductible, "deductible")
        ensure_non_negative(self.limit, "limit", allow_inf=True)
        ensure_in_range(self.participation, 0.0, 1.0, "participation")

    def apply(self, ground_up_loss: float) -> float:
        """Recoverable loss for a single ground-up occurrence loss."""
        loss = ensure_non_negative(ground_up_loss, "ground_up_loss")
        covered = min(max(loss - self.deductible, 0.0), self.limit)
        return covered * self.participation


@dataclass(frozen=True)
class Building:
    """One insured building (risk) in an exposure set.

    Attributes
    ----------
    building_id:
        Identifier unique within its exposure portfolio.
    latitude, longitude:
        Site coordinates in decimal degrees.
    region:
        Geographic region id (matches the catalog's region coding).
    construction:
        Construction class used by the vulnerability curves.
    occupancy:
        Occupancy / use type.
    replacement_value:
        Total insured value (building + contents) in currency units.
    coverage:
        Site-level coverage terms.
    """

    building_id: int
    latitude: float
    longitude: float
    region: int
    construction: ConstructionClass
    occupancy: OccupancyType
    replacement_value: float
    coverage: CoverageTerms = CoverageTerms()

    def __post_init__(self) -> None:
        if self.building_id < 0:
            raise ValueError(f"building_id must be non-negative, got {self.building_id}")
        ensure_in_range(self.latitude, -90.0, 90.0, "latitude")
        ensure_in_range(self.longitude, -180.0, 180.0, "longitude")
        if self.region < 0:
            raise ValueError(f"region must be non-negative, got {self.region}")
        ensure_positive(self.replacement_value, "replacement_value")

    def expected_site_loss(self, damage_ratio: float) -> float:
        """Expected recoverable loss given a mean damage ratio in [0, 1]."""
        ratio = ensure_in_range(damage_ratio, 0.0, 1.0, "damage_ratio")
        return self.coverage.apply(ratio * self.replacement_value)
