"""Layer pricing from simulated year-loss distributions.

Pricing a reinsurance layer from the aggregate analysis output is the business
purpose of the real-time scenario in Section IV: the underwriter re-runs the
engine under candidate terms and needs the expected loss, volatility loading
and resulting premium for each candidate.  The standard technical-premium
formula used here is

``premium = expected_loss + volatility_load * std + expense_ratio * premium``

solved for the premium, i.e. ``premium = (EL + k * std) / (1 - expense_ratio)``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.portfolio.layer import Layer
from repro.utils.validation import ensure_non_negative
from repro.ylt.metrics import RiskMetrics, compute_risk_metrics

__all__ = ["LayerPricing", "price_layer", "rate_on_line", "loss_ratio"]


@dataclass(frozen=True)
class LayerPricing:
    """Pricing result for one layer.

    Attributes
    ----------
    expected_loss:
        Mean annual loss to the layer (the AAL of its year losses).
    volatility_load:
        The volatility loading amount (``k * std``).
    expense_load:
        The expense/profit loading amount.
    technical_premium:
        Total technical premium (expected loss + loads).
    rate_on_line:
        Premium divided by the layer's aggregate limit (when finite).
    metrics:
        Full risk metrics of the layer's year losses.
    """

    expected_loss: float
    volatility_load: float
    expense_load: float
    technical_premium: float
    rate_on_line: float
    metrics: RiskMetrics

    def summary(self) -> str:
        """One-line pricing summary."""
        rol = f"{self.rate_on_line:.1%}" if np.isfinite(self.rate_on_line) else "n/a"
        return (
            f"EL={self.expected_loss:,.0f} "
            f"vol_load={self.volatility_load:,.0f} "
            f"premium={self.technical_premium:,.0f} "
            f"RoL={rol}"
        )


def rate_on_line(premium: float, aggregate_limit: float) -> float:
    """Premium as a fraction of the layer's (finite) aggregate limit."""
    ensure_non_negative(premium, "premium")
    if aggregate_limit <= 0:
        raise ValueError(f"aggregate_limit must be positive, got {aggregate_limit}")
    if not np.isfinite(aggregate_limit):
        return float("nan")
    return premium / aggregate_limit


def loss_ratio(expected_loss: float, premium: float) -> float:
    """Expected loss divided by premium (the underwriter's loss ratio)."""
    ensure_non_negative(expected_loss, "expected_loss")
    if premium <= 0:
        raise ValueError(f"premium must be positive, got {premium}")
    return expected_loss / premium


def price_layer(
    layer: Layer,
    year_losses: np.ndarray,
    volatility_loading: float = 0.3,
    expense_ratio: float = 0.15,
) -> LayerPricing:
    """Price a layer from its simulated year losses.

    Parameters
    ----------
    layer:
        The layer being priced (its aggregate limit feeds the rate on line).
    year_losses:
        Per-trial year losses of the layer from the aggregate analysis.
    volatility_loading:
        Multiplier ``k`` on the year-loss standard deviation.
    expense_ratio:
        Fraction of the premium consumed by expenses and profit margin,
        in ``[0, 1)``.
    """
    ensure_non_negative(volatility_loading, "volatility_loading")
    if not 0.0 <= expense_ratio < 1.0:
        raise ValueError(f"expense_ratio must be in [0, 1), got {expense_ratio}")

    metrics = compute_risk_metrics(year_losses)
    expected_loss = metrics.aal
    volatility_load = volatility_loading * metrics.std
    premium = (expected_loss + volatility_load) / (1.0 - expense_ratio)
    expense_load = premium - expected_loss - volatility_load

    limit = layer.terms.aggregate_limit
    if not np.isfinite(limit):
        # For pure per-occurrence layers use the occurrence limit as the line.
        limit = layer.terms.occurrence_limit
    rol = rate_on_line(premium, limit) if np.isfinite(limit) and limit > 0 else float("nan")

    return LayerPricing(
        expected_loss=expected_loss,
        volatility_load=volatility_load,
        expense_load=expense_load,
        technical_premium=premium,
        rate_on_line=rol,
        metrics=metrics,
    )
