"""Layer pricing from simulated year-loss distributions.

Pricing a reinsurance layer from the aggregate analysis output is the business
purpose of the real-time scenario in Section IV: the underwriter re-runs the
engine under candidate terms and needs the expected loss, volatility loading
and resulting premium for each candidate.  The standard technical-premium
formula used here is

``premium = expected_loss + volatility_load * std + expense_ratio * premium``

solved for the premium, i.e. ``premium = (EL + k * std) / (1 - expense_ratio)``.

:func:`batch_quote` is the batch form of that scenario: many candidate
programs (term variants, competing submissions) are priced in *one* engine
invocation — their layers are concatenated and flow through the fused
multi-layer kernel together — and one :class:`ProgramQuote` per program comes
back.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Mapping, Sequence, TYPE_CHECKING

import numpy as np

from repro.portfolio.layer import Layer
from repro.portfolio.program import ReinsuranceProgram
from repro.utils.validation import ensure_non_negative
from repro.ylt.metrics import RiskMetrics, compute_risk_metrics
from repro.ylt.table import YearLossTable

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (engine imports Layer)
    from repro.core.engine import AggregateRiskEngine
    from repro.uncertainty.analysis import ReplicationSummary
    from repro.yet.table import YearEventTable

__all__ = [
    "LayerPricing",
    "ProgramQuote",
    "price_layer",
    "price_program",
    "batch_quote",
    "rate_on_line",
    "loss_ratio",
]


@dataclass(frozen=True)
class LayerPricing:
    """Pricing result for one layer.

    Attributes
    ----------
    expected_loss:
        Mean annual loss to the layer (the AAL of its year losses).
    volatility_load:
        The volatility loading amount (``k * std``).
    expense_load:
        The expense/profit loading amount.
    technical_premium:
        Total technical premium (expected loss + loads).
    rate_on_line:
        Premium divided by the layer's aggregate limit (when finite).
    metrics:
        Full risk metrics of the layer's year losses.
    """

    expected_loss: float
    volatility_load: float
    expense_load: float
    technical_premium: float
    rate_on_line: float
    metrics: RiskMetrics

    def summary(self) -> str:
        """One-line pricing summary."""
        rol = f"{self.rate_on_line:.1%}" if np.isfinite(self.rate_on_line) else "n/a"
        return (
            f"EL={self.expected_loss:,.0f} "
            f"vol_load={self.volatility_load:,.0f} "
            f"premium={self.technical_premium:,.0f} "
            f"RoL={rol}"
        )


@dataclass(frozen=True)
class ProgramQuote:
    """Pricing result for every layer of one program.

    Attributes
    ----------
    program_name:
        Name of the quoted program.
    layer_names:
        Names of the layers, aligned with ``layer_pricings``.
    layer_pricings:
        One :class:`LayerPricing` per layer, in program order.
    uncertainty:
        Optional secondary-uncertainty bands: a mapping of metric name
        (``"aal"``, ``"pml_<rp>"``, ``"tvar_<level>"``) to the
        :class:`~repro.uncertainty.analysis.ReplicationSummary` of that
        metric across sampled replications, as produced by
        :meth:`~repro.uncertainty.analysis.SecondaryUncertaintyAnalysis.run_batched`.
        ``None`` for a plain (mean-loss) quote.
    """

    program_name: str
    layer_names: tuple[str, ...]
    layer_pricings: tuple[LayerPricing, ...]
    uncertainty: "Mapping[str, ReplicationSummary] | None" = None

    @property
    def has_uncertainty(self) -> bool:
        """True when the quote carries secondary-uncertainty bands."""
        return bool(self.uncertainty)

    def band(self, metric: str) -> "ReplicationSummary":
        """Uncertainty band of one metric (KeyError if absent)."""
        if not self.uncertainty:
            raise KeyError(
                f"quote for {self.program_name!r} carries no uncertainty bands"
            )
        return self.uncertainty[metric]

    @property
    def n_layers(self) -> int:
        """Number of quoted layers."""
        return len(self.layer_pricings)

    @property
    def total_expected_loss(self) -> float:
        """Sum of the layers' expected annual losses."""
        return float(sum(p.expected_loss for p in self.layer_pricings))

    @property
    def total_premium(self) -> float:
        """Sum of the layers' technical premiums."""
        return float(sum(p.technical_premium for p in self.layer_pricings))

    def layer(self, index_or_name: int | str) -> LayerPricing:
        """Pricing of one layer, by position or by name."""
        if isinstance(index_or_name, str):
            try:
                index = self.layer_names.index(index_or_name)
            except ValueError as exc:
                raise KeyError(
                    f"no layer named {index_or_name!r} in quote for {self.program_name!r}"
                ) from exc
        else:
            index = index_or_name
        return self.layer_pricings[index]

    def summary(self) -> str:
        """One-line quote summary (with the AAL band when bands are attached)."""
        line = (
            f"{self.program_name}: layers={self.n_layers} "
            f"EL={self.total_expected_loss:,.0f} premium={self.total_premium:,.0f}"
        )
        if self.uncertainty and "aal" in self.uncertainty:
            band = self.uncertainty["aal"]
            line += f" aal_band=[{band.low:,.0f}, {band.high:,.0f}]"
        return line


def rate_on_line(premium: float, aggregate_limit: float) -> float:
    """Premium as a fraction of the layer's (finite) aggregate limit."""
    ensure_non_negative(premium, "premium")
    if aggregate_limit <= 0:
        raise ValueError(f"aggregate_limit must be positive, got {aggregate_limit}")
    if not np.isfinite(aggregate_limit):
        return float("nan")
    return premium / aggregate_limit


def loss_ratio(expected_loss: float, premium: float) -> float:
    """Expected loss divided by premium (the underwriter's loss ratio)."""
    ensure_non_negative(expected_loss, "expected_loss")
    if premium <= 0:
        raise ValueError(f"premium must be positive, got {premium}")
    return expected_loss / premium


def price_layer(
    layer: Layer,
    year_losses: np.ndarray,
    volatility_loading: float = 0.3,
    expense_ratio: float = 0.15,
) -> LayerPricing:
    """Price a layer from its simulated year losses.

    Parameters
    ----------
    layer:
        The layer being priced (its aggregate limit feeds the rate on line).
    year_losses:
        Per-trial year losses of the layer from the aggregate analysis.
    volatility_loading:
        Multiplier ``k`` on the year-loss standard deviation.
    expense_ratio:
        Fraction of the premium consumed by expenses and profit margin,
        in ``[0, 1)``.
    """
    ensure_non_negative(volatility_loading, "volatility_loading")
    if not 0.0 <= expense_ratio < 1.0:
        raise ValueError(f"expense_ratio must be in [0, 1), got {expense_ratio}")

    metrics = compute_risk_metrics(year_losses)
    expected_loss = metrics.aal
    volatility_load = volatility_loading * metrics.std
    premium = (expected_loss + volatility_load) / (1.0 - expense_ratio)
    expense_load = premium - expected_loss - volatility_load

    limit = layer.terms.aggregate_limit
    if not np.isfinite(limit):
        # For pure per-occurrence layers use the occurrence limit as the line.
        limit = layer.terms.occurrence_limit
    rol = rate_on_line(premium, limit) if np.isfinite(limit) and limit > 0 else float("nan")

    return LayerPricing(
        expected_loss=expected_loss,
        volatility_load=volatility_load,
        expense_load=expense_load,
        technical_premium=premium,
        rate_on_line=rol,
        metrics=metrics,
    )


def price_program(
    program: ReinsuranceProgram,
    ylt: YearLossTable,
    volatility_loading: float = 0.3,
    expense_ratio: float = 0.15,
    uncertainty: "Mapping[str, ReplicationSummary] | None" = None,
) -> ProgramQuote:
    """Price every layer of a program from its Year Loss Table.

    ``ylt`` must be the engine output for exactly this program (one row per
    layer, in program order) — e.g. ``engine.run(program, yet).ylt`` or one
    element of :meth:`~repro.core.engine.AggregateRiskEngine.run_many`.

    ``uncertainty`` optionally attaches secondary-uncertainty bands (metric
    name to :class:`~repro.uncertainty.analysis.ReplicationSummary`) to the
    quote — typically the output of
    :meth:`~repro.uncertainty.analysis.SecondaryUncertaintyAnalysis.run_batched`;
    :meth:`~repro.uncertainty.analysis.SecondaryUncertaintyAnalysis.quote`
    wires the two together.
    """
    if ylt.n_layers != program.n_layers:
        raise ValueError(
            f"YLT has {ylt.n_layers} layers but program {program.name!r} "
            f"has {program.n_layers}"
        )
    pricings = tuple(
        price_layer(
            layer,
            ylt.layer(index),
            volatility_loading=volatility_loading,
            expense_ratio=expense_ratio,
        )
        for index, layer in enumerate(program.layers)
    )
    return ProgramQuote(
        program_name=program.name,
        layer_names=program.layer_names,
        layer_pricings=pricings,
        uncertainty=uncertainty,
    )


def batch_quote(
    programs: Sequence[ReinsuranceProgram | Layer],
    yet: "YearEventTable",
    engine: "AggregateRiskEngine | None" = None,
    volatility_loading: float = 0.3,
    expense_ratio: float = 0.15,
) -> List[ProgramQuote]:
    """Quote many programs in one fused engine invocation.

    All programs are simulated against the same Year Event Table in a single
    :meth:`~repro.core.engine.AggregateRiskEngine.run_many` call (by default
    through the fused multi-layer kernel, with identical ELT gathers
    deduplicated across term variants), then each program's layers are
    priced from the resulting year losses.  This is the batched form of the
    paper's real-time pricing scenario: an underwriter's candidate-term
    variants are all answered from one pass over the YET.

    For very large sweeps — whole renewal books, wide term grids — prefer
    :class:`~repro.portfolio.sweep.PortfolioSweepService`, which streams the
    same computation in row-bounded blocks and yields quotes as a generator.
    """
    from repro.core.engine import AggregateRiskEngine

    normalised = [ReinsuranceProgram.wrap(p) for p in programs]
    if engine is None:
        engine = AggregateRiskEngine()
    results = engine.run_many(normalised, yet)
    return [
        price_program(
            program,
            result.ylt,
            volatility_loading=volatility_loading,
            expense_ratio=expense_ratio,
        )
        for program, result in zip(normalised, results)
    ]
