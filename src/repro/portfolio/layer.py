"""The Layer: a set of ELTs covered under common layer terms.

Section II-A: "Layers, denoted as L, cover a collection of ELTs under a set of
layer terms.  A single layer L_i is composed of two attributes.  Firstly, the
set of ELTs E = {ELT_1, ELT_2, ..., ELT_j}, and secondly, the Layer Terms
T = (T_OccR, T_OccL, T_AggR, T_AggL).  A typical layer covers approximately 3
to 30 individual ELTs."
"""

from __future__ import annotations

from typing import Sequence

from repro.elt.combined import LayerLossMatrix
from repro.elt.table import EventLossTable
from repro.financial.contracts import contract_kind
from repro.financial.terms import LayerTerms

__all__ = ["Layer"]


class Layer:
    """A reinsurance layer: ELT collection + layer terms.

    Parameters
    ----------
    elts:
        The Event Loss Tables the layer covers (all sharing one catalog size).
    terms:
        The layer terms ``T``.
    name:
        Human-readable contract name.
    premium:
        Optional annual premium (used by the pricing module's loss-ratio and
        rate-on-line calculations; 0 means "not yet priced").
    """

    def __init__(
        self,
        elts: Sequence[EventLossTable],
        terms: LayerTerms | None = None,
        name: str = "",
        premium: float = 0.0,
    ) -> None:
        if not elts:
            raise ValueError("a layer must cover at least one ELT")
        catalog_sizes = {elt.catalog_size for elt in elts}
        if len(catalog_sizes) != 1:
            raise ValueError("all ELTs of a layer must share one catalog size")
        if premium < 0:
            raise ValueError(f"premium must be non-negative, got {premium}")
        self.elts: tuple[EventLossTable, ...] = tuple(elts)
        self.terms = terms if terms is not None else LayerTerms()
        self.name = str(name)
        self.premium = float(premium)
        self._loss_matrix: LayerLossMatrix | None = None

    # ------------------------------------------------------------------ #
    # Shape accessors
    # ------------------------------------------------------------------ #
    @property
    def n_elts(self) -> int:
        """Number of ELTs the layer covers (the paper's ``|ELT|`` per layer)."""
        return len(self.elts)

    @property
    def catalog_size(self) -> int:
        """Size of the event catalog the layer's ELTs refer to."""
        return self.elts[0].catalog_size

    @property
    def n_records(self) -> int:
        """Total number of non-zero event-loss records across the layer's ELTs."""
        return sum(elt.size for elt in self.elts)

    @property
    def contract_kind(self) -> str:
        """Contract family implied by the layer terms (Cat XL, Aggregate XL, ...)."""
        return contract_kind(self.terms)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Layer(name={self.name!r}, n_elts={self.n_elts}, "
            f"kind={self.contract_kind!r}, terms=({self.terms.describe()}))"
        )

    # ------------------------------------------------------------------ #
    # Engine-facing helpers
    # ------------------------------------------------------------------ #
    def loss_matrix(self) -> LayerLossMatrix:
        """The dense per-layer loss matrix (built lazily and cached)."""
        if self._loss_matrix is None:
            self._loss_matrix = LayerLossMatrix(self.elts)
        return self._loss_matrix

    def invalidate_cache(self) -> None:
        """Drop the cached loss matrix (call after mutating ELT contents)."""
        self._loss_matrix = None

    def with_terms(self, terms: LayerTerms, name: str | None = None) -> "Layer":
        """A copy of this layer under different layer terms.

        This is the primitive behind the real-time pricing scenario of
        Section IV: the underwriter re-evaluates the *same* exposure (same
        ELTs) under alternative contractual terms.  The cached loss matrix is
        shared between the copies because it does not depend on the terms.
        """
        clone = Layer(self.elts, terms, name=self.name if name is None else name,
                      premium=self.premium)
        clone._loss_matrix = self._loss_matrix
        return clone

    def expected_ground_up_loss(self) -> float:
        """Sum over ELT records of rate-free expected losses (a crude exposure measure)."""
        return float(sum(float(elt.losses.sum()) for elt in self.elts))
