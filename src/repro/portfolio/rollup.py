"""Portfolio roll-up: combine per-layer YLTs into portfolio-level risk.

"Aggregate analysis using 50K trials on complete portfolios consisting of 5000
contracts can be completed in around 24 hours which may be sufficiently fast to
support weekly portfolio updates" (Section IV).  The roll-up is the step after
the engine: per-layer year losses are summed trial-wise (losses of different
layers in the same simulated year add), producing the portfolio year-loss
distribution, per-layer diversification statistics and group-level summaries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping

import numpy as np

from repro.portfolio.program import ReinsuranceProgram
from repro.ylt.metrics import RiskMetrics, compute_risk_metrics
from repro.ylt.table import YearLossTable

__all__ = ["RollupResult", "portfolio_rollup"]


@dataclass(frozen=True)
class RollupResult:
    """Portfolio roll-up output.

    Attributes
    ----------
    portfolio_metrics:
        Risk metrics of the trial-wise sum of all layers' year losses.
    layer_metrics:
        Per-layer risk metrics keyed by layer name.
    diversification_benefit:
        1 - (portfolio PML / sum of standalone layer PMLs) at the reference
        return period; positive values quantify the diversification across
        layers.
    reference_return_period:
        Return period used for the diversification statistic.
    group_metrics:
        Optional metrics per group (e.g. per contract kind).
    """

    portfolio_metrics: RiskMetrics
    layer_metrics: Mapping[str, RiskMetrics]
    diversification_benefit: float
    reference_return_period: float
    group_metrics: Mapping[str, RiskMetrics]

    @property
    def portfolio_aal(self) -> float:
        """Average annual loss of the whole portfolio."""
        return self.portfolio_metrics.aal


def portfolio_rollup(
    ylt: YearLossTable,
    program: ReinsuranceProgram | None = None,
    reference_return_period: float = 100.0,
) -> RollupResult:
    """Roll a per-layer YLT up to portfolio level.

    Parameters
    ----------
    ylt:
        Year Loss Table with one row per layer.
    program:
        Optional program; when given, group-level metrics are computed per
        contract kind (layer names must match between program and YLT).
    reference_return_period:
        Return period for the diversification-benefit statistic.
    """
    if reference_return_period < 1.0:
        raise ValueError("reference_return_period must be at least 1 year")

    portfolio_losses = ylt.portfolio_losses()
    portfolio_metrics = compute_risk_metrics(
        portfolio_losses, return_periods=(10.0, 25.0, 50.0, 100.0, 250.0, reference_return_period)
    )
    per_layer: Dict[str, RiskMetrics] = {}
    standalone_pml_sum = 0.0
    for name, losses in ylt.iter_layers():
        metrics = compute_risk_metrics(
            losses, return_periods=(10.0, 25.0, 50.0, 100.0, 250.0, reference_return_period)
        )
        per_layer[name] = metrics
        standalone_pml_sum += metrics.pml[reference_return_period]

    portfolio_pml = portfolio_metrics.pml[reference_return_period]
    if standalone_pml_sum > 0:
        diversification = 1.0 - portfolio_pml / standalone_pml_sum
    else:
        diversification = 0.0

    group_metrics: Dict[str, RiskMetrics] = {}
    if program is not None:
        name_to_row = {name: i for i, name in enumerate(ylt.layer_names)}
        for kind, layers in program.group_by_contract_kind().items():
            rows = [name_to_row[layer.name] for layer in layers if layer.name in name_to_row]
            if not rows:
                continue
            group_losses = ylt.losses[rows].sum(axis=0)
            group_metrics[kind] = compute_risk_metrics(
                group_losses,
                return_periods=(10.0, 25.0, 50.0, 100.0, 250.0, reference_return_period),
            )

    return RollupResult(
        portfolio_metrics=portfolio_metrics,
        layer_metrics=per_layer,
        diversification_benefit=float(np.clip(diversification, -1.0, 1.0)),
        reference_return_period=float(reference_return_period),
        group_metrics=group_metrics,
    )
