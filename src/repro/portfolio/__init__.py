"""Reinsurance portfolio substrate: layers, programs, pricing and roll-up.

A *layer* is the unit of analysis in the paper: a set of ELTs covered under
one set of layer terms.  A reinsurer's *program* (portfolio) holds thousands
of layers; portfolio-level analysis runs the aggregate engine over every layer
and rolls the per-layer Year Loss Tables up into a portfolio YLT from which
PML/TVaR are reported.
"""

from repro.portfolio.layer import Layer
from repro.portfolio.pricing import (
    LayerPricing,
    ProgramQuote,
    batch_quote,
    price_layer,
    price_program,
    rate_on_line,
)
from repro.portfolio.program import ReinsuranceProgram
from repro.portfolio.rollup import portfolio_rollup, RollupResult
from repro.portfolio.sweep import PortfolioSweepService, SweepBlock

__all__ = [
    "Layer",
    "ReinsuranceProgram",
    "LayerPricing",
    "ProgramQuote",
    "price_layer",
    "price_program",
    "batch_quote",
    "rate_on_line",
    "portfolio_rollup",
    "RollupResult",
    "PortfolioSweepService",
    "SweepBlock",
]
