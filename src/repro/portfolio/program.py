"""Reinsurance program: an ordered collection of layers.

The program is the portfolio-level input to the aggregate analysis (the
outermost loop of the basic algorithm — "for all a in L").  It also carries
the bookkeeping a portfolio roll-up needs: looking layers up by name, grouping
them by cedant or contract kind, and summing premiums.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, List, Sequence

from repro.portfolio.layer import Layer

__all__ = ["ReinsuranceProgram"]


class ReinsuranceProgram:
    """An ordered, named collection of :class:`~repro.portfolio.layer.Layer`."""

    def __init__(self, layers: Sequence[Layer], name: str = "program") -> None:
        if not layers:
            raise ValueError("a program must contain at least one layer")
        catalog_sizes = {layer.catalog_size for layer in layers}
        if len(catalog_sizes) != 1:
            raise ValueError(
                "all layers of a program must reference the same catalog size, "
                f"got {sorted(catalog_sizes)}"
            )
        self.layers: tuple[Layer, ...] = tuple(layers)
        self.name = str(name)

    @classmethod
    def wrap(cls, program_or_layer: "ReinsuranceProgram | Layer") -> "ReinsuranceProgram":
        """Coerce a bare :class:`Layer` into a single-layer program.

        Programs pass through unchanged.  This is the one place the
        layer-as-program convenience (accepted by the engine facade and the
        batch pricing path) is defined.
        """
        if isinstance(program_or_layer, Layer):
            return cls(
                [program_or_layer], name=program_or_layer.name or "single-layer"
            )
        return program_or_layer

    # ------------------------------------------------------------------ #
    # Container protocol
    # ------------------------------------------------------------------ #
    @property
    def n_layers(self) -> int:
        """Number of layers (the paper's ``|L|`` parameter)."""
        return len(self.layers)

    @property
    def catalog_size(self) -> int:
        """Catalog size shared by all layers."""
        return self.layers[0].catalog_size

    def __len__(self) -> int:
        return self.n_layers

    def __iter__(self) -> Iterator[Layer]:
        return iter(self.layers)

    def __getitem__(self, index: int) -> Layer:
        return self.layers[index]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ReinsuranceProgram(name={self.name!r}, n_layers={self.n_layers})"

    # ------------------------------------------------------------------ #
    # Shape / bookkeeping
    # ------------------------------------------------------------------ #
    @property
    def layer_names(self) -> tuple[str, ...]:
        """Names of the layers, in program order."""
        return tuple(layer.name for layer in self.layers)

    @property
    def mean_elts_per_layer(self) -> float:
        """Average number of ELTs per layer (the paper's ``|ELT|_av``)."""
        return sum(layer.n_elts for layer in self.layers) / self.n_layers

    @property
    def total_premium(self) -> float:
        """Sum of the layers' annual premiums."""
        return float(sum(layer.premium for layer in self.layers))

    def layer_by_name(self, name: str) -> Layer:
        """The first layer with the given name (KeyError if absent)."""
        for layer in self.layers:
            if layer.name == name:
                return layer
        raise KeyError(f"no layer named {name!r} in program {self.name!r}")

    def group_by(self, key: Callable[[Layer], str]) -> Dict[str, List[Layer]]:
        """Group layers by an arbitrary key function (cedant, kind, region...)."""
        groups: Dict[str, List[Layer]] = {}
        for layer in self.layers:
            groups.setdefault(key(layer), []).append(layer)
        return groups

    def group_by_contract_kind(self) -> Dict[str, List[Layer]]:
        """Group layers by contract family (per-occurrence XL, aggregate XL, ...)."""
        return self.group_by(lambda layer: layer.contract_kind)

    def subset(self, indices: Sequence[int], name: str | None = None) -> "ReinsuranceProgram":
        """A new program containing only the layers at ``indices``."""
        selected = [self.layers[i] for i in indices]
        return ReinsuranceProgram(selected, name=name or f"{self.name}/subset")

    def memory_estimate_bytes(self) -> int:
        """Estimated memory of all layers' dense loss matrices (direct access tables).

        This is the figure the paper uses to motivate the memory cost of
        direct access tables ("15 x 2 million = 30 million event-loss pairs").
        Matrices are not materialised by this call.
        """
        return sum(layer.n_elts * layer.catalog_size * 8 for layer in self.layers)
