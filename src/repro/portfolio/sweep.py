"""Streaming portfolio sweep: many programs, blocks of one engine pass.

The scenario-diversity form of the paper's real-time pricing use case: an
underwriting desk holds *many* candidate programs — term variants of one
submission, competing cedant submissions, a whole renewal book — and wants a
quote for each, priced against the same simulated event set.  Pricing them
one engine invocation at a time repeats the YET pass per program; pricing
them all in one giant invocation holds every row in memory at once.

:class:`PortfolioSweepService` takes the middle road the ExecutionPlan layer
makes cheap:

* programs are grouped into **blocks** of bounded row count;
* each block lowers to one :class:`~repro.core.plan.ExecutionPlan` via
  :meth:`~repro.core.plan.PlanBuilder.from_programs`, which *dedupes*
  identical ELT gathers across the block's variants (term variants of one
  layer share their term-netted stack row, so the fused gather reads each
  distinct row once);
* blocks are executed and **yielded as a generator** — the caller streams
  quotes while later blocks are still pending, and the engine's working set
  stays at one block's stack regardless of how many programs are swept.

Example::

    service = PortfolioSweepService(config=EngineConfig(backend="vectorized"))
    for block in service.sweep(variants, yet, max_rows_per_block=64):
        for quote in block.quotes:
            print(quote.summary())

(the CLI equivalent is ``are sweep --variants 32 --block-rows 64``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator, List, Sequence, TYPE_CHECKING

from repro.core.config import EngineConfig
from repro.portfolio.layer import Layer
from repro.portfolio.pricing import ProgramQuote, price_program
from repro.portfolio.program import ReinsuranceProgram

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    # repro.core.plan itself imports the portfolio substrate, so the plan
    # and engine types are imported lazily at call time.
    from repro.core.engine import AggregateRiskEngine
    from repro.core.results import EngineResult
    from repro.yet.table import YearEventTable

__all__ = ["PortfolioSweepService", "SweepBlock"]


@dataclass(frozen=True)
class SweepBlock:
    """Result of one sweep block: a group of programs priced in one pass.

    Attributes
    ----------
    index:
        Zero-based position of the block in the sweep.
    programs:
        The block's input programs, in order.
    results:
        One engine result per program (split from the block's combined run).
    quotes:
        One technical-premium quote per program.
    n_rows:
        Total stacked rows the block describes (sum of the programs' layer
        counts).
    n_unique_rows:
        Distinct stack rows actually gathered after deduplication —
        ``n_rows - n_unique_rows`` gathers were saved by row sharing.
    wall_seconds:
        Wall time of the block's engine pass.
    """

    index: int
    programs: tuple[ReinsuranceProgram, ...]
    results: "tuple[EngineResult, ...]"
    quotes: tuple[ProgramQuote, ...]
    n_rows: int
    n_unique_rows: int
    wall_seconds: float

    @property
    def n_programs(self) -> int:
        """Number of programs priced by the block."""
        return len(self.programs)

    @property
    def dedup_factor(self) -> float:
        """Rows described per row gathered (1.0 = nothing shared)."""
        if self.n_unique_rows == 0:
            return 1.0
        return self.n_rows / self.n_unique_rows

    def summary(self) -> str:
        """One-line human-readable summary of the block."""
        return (
            f"block {self.index}: {self.n_programs} programs, "
            f"{self.n_rows} rows ({self.n_unique_rows} unique, "
            f"x{self.dedup_factor:.2f} shared) in {self.wall_seconds:.4f}s"
        )


class PortfolioSweepService:
    """Prices many programs by streaming blocks of one fused engine pass.

    Parameters
    ----------
    engine:
        The engine to execute blocks on; built from ``config`` when omitted.
    config:
        Engine configuration used when ``engine`` is omitted (ignored
        otherwise).
    volatility_loading, expense_ratio:
        Pricing parameters forwarded to
        :func:`~repro.portfolio.pricing.price_program` for every quote.
    plan_factory:
        How a block lowers to an :class:`~repro.core.plan.ExecutionPlan`:
        a callable ``(programs, yet, dedupe, source, n_shards) -> ExecutionPlan``.
        Defaults to :meth:`~repro.core.plan.PlanBuilder.from_programs`; the
        :class:`~repro.service.service.RiskService` injects its
        content-addressed plan cache here so repeated sweeps of the same
        block reuse the lowered plan and fused stack.
    price_quotes:
        Build a technical-premium quote per program (the default).  With
        ``False`` every block's ``quotes`` is empty — for callers that only
        want the engine results, the pricing arithmetic is skipped rather
        than discarded.
    """

    def __init__(
        self,
        engine: "AggregateRiskEngine | None" = None,
        config: EngineConfig | None = None,
        volatility_loading: float = 0.3,
        expense_ratio: float = 0.15,
        plan_factory: "Callable[..., object] | None" = None,
        price_quotes: bool = True,
    ) -> None:
        from repro.core.engine import AggregateRiskEngine

        self.engine = engine if engine is not None else AggregateRiskEngine(config)
        self.volatility_loading = float(volatility_loading)
        self.expense_ratio = float(expense_ratio)
        self.plan_factory = plan_factory
        self.price_quotes = bool(price_quotes)

    # ------------------------------------------------------------------ #
    # Streaming execution
    # ------------------------------------------------------------------ #
    def sweep(
        self,
        programs: Sequence[ReinsuranceProgram | Layer],
        yet: "YearEventTable",
        max_rows_per_block: int = 0,
        dedupe: bool = True,
        shards: int = 0,
    ) -> Iterator[SweepBlock]:
        """Stream the sweep: one :class:`SweepBlock` per engine pass.

        ``max_rows_per_block`` bounds how many stacked rows one pass may
        carry (``0`` = everything in a single block); programs are packed
        greedily in order, never split across blocks, so a block can exceed
        the bound only when a single program alone does.  With ``dedupe``
        identical ELT gathers are shared within each block.

        ``shards`` additionally bounds the *trial* axis: each block's plan
        is executed as that many disjoint trial shards, the scheduler's
        :class:`~repro.core.results.ResultAccumulator` merging the partial
        blocks exactly (``0`` = the engine config's ``trial_shards``).  Rows
        and trials are therefore bounded independently — a sweep's working
        set is one row block x one trial shard, and the quotes stream out
        bit-identical to the unbounded run.

        This is a generator: block ``k`` is executed lazily when the caller
        advances past block ``k - 1``, so quotes stream out while the rest
        of the sweep is still pending and memory stays bounded at one
        block's stack.
        """
        from repro.core.plan import PlanBuilder

        normalised = [ReinsuranceProgram.wrap(program) for program in programs]
        if not normalised:
            raise ValueError("a sweep needs at least one program")
        if max_rows_per_block < 0:
            raise ValueError(
                f"max_rows_per_block must be non-negative, got {max_rows_per_block}"
            )
        if shards < 0:
            raise ValueError(f"shards must be non-negative, got {shards}")

        build_plan = self.plan_factory
        if build_plan is None:
            build_plan = (  # noqa: E731
                lambda group, group_yet, group_dedupe, source, n_shards=0: (
                    PlanBuilder.from_programs(
                        group,
                        group_yet,
                        dedupe=group_dedupe,
                        source=source,
                        n_shards=n_shards,
                    )
                )
            )

        for index, group in enumerate(_pack_blocks(normalised, max_rows_per_block)):
            plan = build_plan(group, yet, dedupe, "sweep", shards)
            combined = self.engine.run_plan(plan)
            results = tuple(plan.split_result(combined))
            quotes: tuple[ProgramQuote, ...] = ()
            if self.price_quotes:
                quotes = tuple(
                    price_program(
                        program,
                        result.ylt,
                        volatility_loading=self.volatility_loading,
                        expense_ratio=self.expense_ratio,
                    )
                    for program, result in zip(group, results)
                )
            yield SweepBlock(
                index=index,
                programs=tuple(group),
                results=results,
                quotes=quotes,
                n_rows=plan.n_rows,
                n_unique_rows=plan.n_unique_rows,
                wall_seconds=combined.wall_seconds,
            )

    def quote_all(
        self,
        programs: Sequence[ReinsuranceProgram | Layer],
        yet: "YearEventTable",
        max_rows_per_block: int = 0,
        dedupe: bool = True,
        shards: int = 0,
    ) -> List[ProgramQuote]:
        """Drain :meth:`sweep` and return one quote per program, in order."""
        quotes: List[ProgramQuote] = []
        for block in self.sweep(
            programs,
            yet,
            max_rows_per_block=max_rows_per_block,
            dedupe=dedupe,
            shards=shards,
        ):
            quotes.extend(block.quotes)
        return quotes


def _pack_blocks(
    programs: Sequence[ReinsuranceProgram], max_rows: int
) -> Iterator[List[ReinsuranceProgram]]:
    """Greedy in-order packing of programs into row-bounded blocks."""
    if max_rows == 0:
        yield list(programs)
        return
    block: List[ReinsuranceProgram] = []
    rows = 0
    for program in programs:
        if block and rows + program.n_layers > max_rows:
            yield block
            block, rows = [], 0
        block.append(program)
        rows += program.n_layers
    if block:
        yield block
