"""End-to-end synthetic workload generation.

A *workload* bundles everything one aggregate-analysis run needs: the event
catalog, the Year Event Table and the reinsurance program (layers over ELTs
produced by the catastrophe model).  The generator builds all of it from a
single seed, and :mod:`repro.workloads.presets` provides the named parameter
sets used by the tests, examples and — scaled down proportionally — by the
benchmarks that reproduce the paper's figures.
"""

from repro.workloads.generator import AggregateWorkload, WorkloadGenerator, WorkloadSpec
from repro.workloads.presets import (
    PAPER_FULL_SCALE,
    bench_spec,
    paper_scaled_spec,
    preset,
    preset_names,
    tiny_spec,
)

__all__ = [
    "WorkloadSpec",
    "AggregateWorkload",
    "WorkloadGenerator",
    "PAPER_FULL_SCALE",
    "preset",
    "preset_names",
    "tiny_spec",
    "bench_spec",
    "paper_scaled_spec",
]
