"""Named workload presets.

Three families of presets are provided:

* ``tiny`` — seconds-scale workloads for unit and property tests;
* ``bench`` — the scaled-down workloads the benchmark harness runs (chosen so
  a full benchmark session finishes in minutes on a laptop while preserving
  the paper's parameter *ratios*);
* ``PAPER_FULL_SCALE`` — the paper's headline configuration (1 million trials,
  1000 events per trial, one layer of 15 ELTs over a 2-million-event catalog).
  This preset is never *executed* by the test-suite; it parameterises the
  analytical device/CPU models that project full-scale runtimes in the
  Figure 6a benchmark and in EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Dict

from repro.workloads.generator import WorkloadSpec

__all__ = [
    "PAPER_FULL_SCALE",
    "tiny_spec",
    "bench_spec",
    "paper_scaled_spec",
    "preset",
    "preset_names",
]

#: The paper's headline experiment: 1M trials x 1000 events x 15 ELTs x 1 layer
#: on a 2M-event catalog (Section III-B and Figure 6).
PAPER_FULL_SCALE = WorkloadSpec(
    n_trials=1_000_000,
    events_per_trial=1000,
    n_layers=1,
    elts_per_layer=15,
    catalog_size=2_000_000,
    buildings_per_exposure=1000,
    n_regions=64,
    fixed_trial_length=True,
    seed=20120101,
)


def tiny_spec(seed: int = 7) -> WorkloadSpec:
    """A milliseconds-scale workload for unit tests."""
    return WorkloadSpec(
        n_trials=64,
        events_per_trial=20,
        n_layers=2,
        elts_per_layer=3,
        catalog_size=500,
        buildings_per_exposure=40,
        n_regions=8,
        seed=seed,
    )


def bench_spec(seed: int = 42) -> WorkloadSpec:
    """The default benchmark workload (a ~1/500 linear scale of the paper's).

    The paper's ratios are preserved: trials : events/trial : ELTs/layer stay
    at 2000 : 100 : 15 (vs 1,000,000 : 1000 : 15), and the catalog is kept
    20x larger than an ELT's non-zero record count so that the direct access
    tables remain sparse.
    """
    return WorkloadSpec(
        n_trials=2000,
        events_per_trial=100,
        n_layers=1,
        elts_per_layer=15,
        catalog_size=40_000,
        buildings_per_exposure=100,
        n_regions=32,
        seed=seed,
    )


def paper_scaled_spec(trial_fraction: float = 0.002, seed: int = 42) -> WorkloadSpec:
    """The paper's configuration with the trial count scaled by ``trial_fraction``.

    Events per trial, ELTs per layer and layer count keep the paper's values;
    only the trial dimension (which the paper itself shows is linear,
    Fig. 2b) is reduced.
    """
    if not 0.0 < trial_fraction <= 1.0:
        raise ValueError(f"trial_fraction must be in (0, 1], got {trial_fraction}")
    n_trials = max(1, int(round(PAPER_FULL_SCALE.n_trials * trial_fraction)))
    return PAPER_FULL_SCALE.scaled(
        n_trials=n_trials,
        catalog_size=100_000,
        buildings_per_exposure=200,
        n_regions=64,
        seed=seed,
    )


_PRESETS: Dict[str, WorkloadSpec] = {
    "tiny": tiny_spec(),
    "bench": bench_spec(),
    "bench-large": bench_spec().scaled(n_trials=10_000),
    "paper-1permille": paper_scaled_spec(0.001),
    "paper-full": PAPER_FULL_SCALE,
}


def preset_names() -> tuple[str, ...]:
    """Names of the available presets."""
    return tuple(_PRESETS)


def preset(name: str) -> WorkloadSpec:
    """Look a preset up by name."""
    try:
        return _PRESETS[name]
    except KeyError as exc:
        raise KeyError(
            f"unknown preset {name!r}; available presets: {', '.join(_PRESETS)}"
        ) from exc
