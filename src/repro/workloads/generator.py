"""Workload specification and generation.

The paper characterises an aggregate-analysis problem by four key parameters
(Section III-C.1): the number of events in a trial, the number of trials, the
average number of ELTs per layer and the number of layers — plus the catalog
size and the per-ELT record counts that drive memory behaviour.
:class:`WorkloadSpec` captures exactly these parameters;
:class:`WorkloadGenerator` turns a spec into a concrete, reproducible
:class:`AggregateWorkload` by running the full synthetic pipeline:

catalog -> exposure sets -> catastrophe model -> ELTs -> layers -> program,
and catalog -> YET simulator -> YET.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Sequence

import numpy as np

from repro.catalog.generator import CatalogGenerator
from repro.catalog.events import EventCatalog
from repro.elt.table import EventLossTable
from repro.exposure.generator import ExposureGenerator
from repro.exposure.geography import RegionGrid
from repro.financial.terms import FinancialTerms, LayerTerms
from repro.hazard.catmodel import CatastropheModel, CatModelSettings
from repro.parallel.device import WorkloadShape
from repro.portfolio.layer import Layer
from repro.portfolio.program import ReinsuranceProgram
from repro.utils.rng import SeedSequenceFactory
from repro.yet.simulator import YETSimulator
from repro.yet.table import YearEventTable

__all__ = ["WorkloadSpec", "AggregateWorkload", "WorkloadGenerator"]


@dataclass(frozen=True)
class WorkloadSpec:
    """Shape parameters of a synthetic aggregate-analysis workload.

    Attributes
    ----------
    n_trials:
        Number of YET trials (``|T|``).
    events_per_trial:
        Events per trial (``|E_t|_av``); trials have exactly this length when
        ``fixed_trial_length`` is set, otherwise it is the Poisson mean.
    n_layers:
        Number of layers (``|L|``).
    elts_per_layer:
        ELTs covered by each layer (``|ELT|_av``).
    catalog_size:
        Size of the stochastic event catalog.
    buildings_per_exposure:
        Buildings per synthetic exposure set (controls ELT generation cost
        only; the engine never sees the buildings).
    n_regions:
        Geographic regions of the synthetic world (controls ELT sparsity).
    fixed_trial_length:
        Use exactly ``events_per_trial`` events in every trial (the paper's
        performance experiments fix the trial length).
    occurrence_retention_fraction / occurrence_limit_fraction /
    aggregate_retention_fraction / aggregate_limit_fraction:
        Layer terms expressed as fractions of the layer's mean trial
        ground-up loss, so that the terms bind meaningfully at any scale.
    elt_share:
        Ceding share embedded in each ELT's financial terms.
    seed:
        Root seed of the whole workload.
    """

    n_trials: int = 1000
    events_per_trial: int = 100
    n_layers: int = 1
    elts_per_layer: int = 15
    catalog_size: int = 20_000
    buildings_per_exposure: int = 100
    n_regions: int = 24
    fixed_trial_length: bool = True
    occurrence_retention_fraction: float = 0.05
    occurrence_limit_fraction: float = 0.4
    aggregate_retention_fraction: float = 0.1
    aggregate_limit_fraction: float = 2.0
    elt_share: float = 0.9
    seed: int = 1234

    def __post_init__(self) -> None:
        for attr in ("n_trials", "events_per_trial", "n_layers", "elts_per_layer",
                     "catalog_size", "buildings_per_exposure", "n_regions"):
            if getattr(self, attr) <= 0:
                raise ValueError(f"{attr} must be positive, got {getattr(self, attr)}")
        for attr in ("occurrence_retention_fraction", "occurrence_limit_fraction",
                     "aggregate_retention_fraction", "aggregate_limit_fraction",
                     "elt_share"):
            if getattr(self, attr) < 0:
                raise ValueError(f"{attr} must be non-negative, got {getattr(self, attr)}")

    @property
    def n_elts_total(self) -> int:
        """Total number of distinct ELTs the workload needs."""
        return self.n_layers * self.elts_per_layer

    @property
    def total_lookups(self) -> int:
        """Total ELT lookups the analysis performs (the paper's cost measure)."""
        return self.n_trials * self.events_per_trial * self.elts_per_layer * self.n_layers

    def shape(self) -> WorkloadShape:
        """The corresponding :class:`~repro.parallel.device.WorkloadShape`."""
        return WorkloadShape(
            n_trials=self.n_trials,
            events_per_trial=float(self.events_per_trial),
            n_elts=self.elts_per_layer,
            n_layers=self.n_layers,
        )

    def scaled(self, **overrides) -> "WorkloadSpec":
        """A copy of the spec with some parameters overridden."""
        return replace(self, **overrides)


@dataclass(frozen=True)
class AggregateWorkload:
    """A fully materialised workload: catalog + YET + program."""

    spec: WorkloadSpec
    catalog: EventCatalog
    yet: YearEventTable
    program: ReinsuranceProgram
    elts: Sequence[EventLossTable] = field(default_factory=tuple)

    @property
    def shape(self) -> WorkloadShape:
        """Shape of the workload as seen by the engine."""
        return WorkloadShape(
            n_trials=self.yet.n_trials,
            events_per_trial=max(self.yet.mean_events_per_trial, 1e-9),
            n_elts=max(int(round(self.program.mean_elts_per_layer)), 1),
            n_layers=self.program.n_layers,
        )

    def summary(self) -> str:
        """One-line description used by benchmark output."""
        return (
            f"trials={self.yet.n_trials} events/trial={self.yet.mean_events_per_trial:.0f} "
            f"layers={self.program.n_layers} elts/layer={self.program.mean_elts_per_layer:.0f} "
            f"catalog={self.catalog.size}"
        )


class WorkloadGenerator:
    """Builds reproducible synthetic workloads from a :class:`WorkloadSpec`."""

    def __init__(self, spec: WorkloadSpec) -> None:
        self.spec = spec

    # ------------------------------------------------------------------ #
    # Pipeline stages
    # ------------------------------------------------------------------ #
    def build_catalog(self, seeds: SeedSequenceFactory) -> EventCatalog:
        """Stage 1: the stochastic event catalog."""
        spec = self.spec
        generator = CatalogGenerator(n_regions=spec.n_regions)
        return generator.generate_with_rate(
            spec.catalog_size,
            events_per_year=float(spec.events_per_trial),
            rng=seeds.rng("catalog"),
        )

    def build_elts(self, catalog: EventCatalog, seeds: SeedSequenceFactory) -> list[EventLossTable]:
        """Stage 2: exposure sets and the catastrophe model producing ELTs."""
        spec = self.spec
        grid = RegionGrid(n_lat=max(1, spec.n_regions // 8), n_lon=min(8, spec.n_regions))
        # The grid may hold fewer cells than n_regions when n_regions is not a
        # multiple of 8; clamp by rebuilding a 1 x n grid in that case.
        if grid.size != spec.n_regions:
            grid = RegionGrid(n_lat=1, n_lon=spec.n_regions)
        exposure_generator = ExposureGenerator(grid)
        portfolios = exposure_generator.generate_many(
            spec.n_elts_total,
            spec.buildings_per_exposure,
            rng=seeds.rng("exposure"),
        )
        model = CatastropheModel(
            catalog,
            n_regions=spec.n_regions,
            settings=CatModelSettings(loss_threshold=1.0),
        )
        terms = FinancialTerms(share=spec.elt_share)
        return model.generate_elts(portfolios, terms)

    def build_layers(self, elts: Sequence[EventLossTable],
                     seeds: SeedSequenceFactory,
                     catalog: EventCatalog) -> ReinsuranceProgram:
        """Stage 3: assemble layers with terms scaled to the loss level.

        The layer terms are expressed as fractions of the *expected trial
        ground-up loss*, computed with the catalog's occurrence probabilities
        (a trial event is far more likely to be one of the frequent small
        events than one of the rare large ones), so that retentions and
        limits bind meaningfully regardless of the workload scale.
        """
        spec = self.spec
        rng = seeds.rng("layers")
        probabilities = catalog.occurrence_probabilities()
        layers = []
        for layer_index in range(spec.n_layers):
            start = layer_index * spec.elts_per_layer
            layer_elts = list(elts[start : start + spec.elts_per_layer])
            expected_event_loss = float(
                sum(
                    float(probabilities[elt.event_ids] @ elt.losses) if elt.size else 0.0
                    for elt in layer_elts
                )
            )
            expected_trial_loss = max(expected_event_loss * spec.events_per_trial, 1.0)
            jitter = float(rng.uniform(0.8, 1.2))
            terms = LayerTerms(
                occurrence_retention=spec.occurrence_retention_fraction * expected_trial_loss * jitter,
                occurrence_limit=(
                    spec.occurrence_limit_fraction * expected_trial_loss * jitter
                    if np.isfinite(spec.occurrence_limit_fraction)
                    else float("inf")
                ),
                aggregate_retention=spec.aggregate_retention_fraction * expected_trial_loss * jitter,
                aggregate_limit=(
                    spec.aggregate_limit_fraction * expected_trial_loss * jitter
                    if np.isfinite(spec.aggregate_limit_fraction)
                    else float("inf")
                ),
            )
            layers.append(Layer(layer_elts, terms, name=f"layer-{layer_index:03d}"))
        return ReinsuranceProgram(layers, name="synthetic-program")

    def build_yet(self, catalog: EventCatalog, seeds: SeedSequenceFactory) -> YearEventTable:
        """Stage 4: the Year Event Table."""
        spec = self.spec
        simulator = YETSimulator(catalog)
        if spec.fixed_trial_length:
            return simulator.simulate_fixed_length(
                spec.n_trials, spec.events_per_trial, rng=seeds.rng("yet")
            )
        return simulator.simulate(spec.n_trials, rng=seeds.rng("yet"))

    # ------------------------------------------------------------------ #
    # Entry point
    # ------------------------------------------------------------------ #
    def generate(self) -> AggregateWorkload:
        """Run the full pipeline and return the materialised workload."""
        seeds = SeedSequenceFactory(self.spec.seed)
        catalog = self.build_catalog(seeds)
        elts = self.build_elts(catalog, seeds)
        program = self.build_layers(elts, seeds, catalog)
        yet = self.build_yet(catalog, seeds)
        return AggregateWorkload(
            spec=self.spec, catalog=catalog, yet=yet, program=program, elts=tuple(elts)
        )
