"""Distributed fleet execution over the PartialResult algebra.

The scaling axis beyond one box: a coordinator ships ``(program digest,
shard trial range, YET store reference)`` tuples to worker processes over
TCP, each worker executes ``run_plan`` on its configured backend, and the
serialized :class:`~repro.core.results.PartialResult` blocks stream back
into one :class:`~repro.core.results.ResultAccumulator` as they arrive.
Because disjoint trial-shard merges are bit-identical to monolithic runs
(PR 5's invariant), the fleet's answer is exactly the single-process
answer — whatever the backend, the shard count, or the completion order.

* :mod:`repro.distributed.protocol` — NDJSON control lines + length-framed
  binary payloads, and the config codec both sides agree on;
* :mod:`repro.distributed.worker` — ``are worker``: a warm, digest-keyed
  artifact/plan cache behind a threaded socket server;
* :mod:`repro.distributed.fleet` — the coordinator: work-stealing shard
  queue, per-worker timeout + one retry, and reassignment of a dead
  worker's shards to survivors via ``ResultAccumulator.missing_ranges()``.

Entry points: :meth:`repro.core.engine.AggregateRiskEngine.run_distributed`,
the ``workers`` field of :class:`~repro.service.request.AnalysisRequest`,
and the ``are worker`` CLI command.
"""

from repro.distributed.fleet import FleetEngine, FleetError, WorkerClient
from repro.distributed.protocol import MissingArtifact, WorkerError
from repro.distributed.worker import FleetWorker, WorkerProcess

__all__ = [
    "FleetEngine",
    "FleetError",
    "FleetWorker",
    "MissingArtifact",
    "WorkerClient",
    "WorkerError",
    "WorkerProcess",
]
