"""The fleet worker: ``are worker`` — a warm shard-pricing socket server.

One worker process hosts one warm engine per requested configuration plus a
digest-keyed artifact cache (programs, inline-shipped YETs, fused loss
stacks, shard-restricted plans).  The first ``run_shard`` request for a
workload ships the program (and, without a shared filesystem, the YET)
once; every later request — from the same analysis or the next one — sends
only digests, so a warm worker goes straight from the control line to the
kernel pass, exactly like :class:`~repro.service.cache.PlanCache` does
in-process.

The server is deliberately *threaded-blocking*, not asyncio: a worker's job
is to saturate its cores with one kernel pass at a time (executions
serialise on a lock), and the coordinator holds one connection per worker —
there is no fan-in to multiplex.  The asyncio machinery of
:mod:`repro.service.server` solves a different problem (many clients, one
box) and stays where it is.

Helpers for tests and benchmarks: :class:`WorkerProcess` spawns a worker in
a child process (killable mid-run, which is how the shard-reassignment
suite exercises worker death) and reports its ephemeral port back.
"""

from __future__ import annotations

import os
import pickle
import socket
import threading
from collections import OrderedDict
from dataclasses import replace
from typing import Any, Mapping, Tuple

from repro.core.config import EngineConfig
from repro.core.engine import AggregateRiskEngine
from repro.core.plan import PlanBuilder
from repro.core.results import PartialResult
from repro.parallel.partitioner import TrialRange
from repro.service.cache import CacheStats, PlanCache
from repro.service.digests import config_digest, program_digest
from repro.service.response import error_payload
from repro.yet.stores import InMemoryYetStore, resolve_yet_ref
from repro.distributed.protocol import (
    MissingArtifact,
    decode_config_overrides,
    format_address,
    recv_frame,
    send_frame,
)

__all__ = ["FleetWorker", "WorkerProcess"]

#: Fused stacks retained per worker ((program digest, config digest) keyed).
_MAX_STACKS = 8


class FleetWorker:
    """A warm shard-pricing worker behind a threaded TCP socket server.

    Parameters
    ----------
    config:
        The worker's *base* engine config.  Each ``run_shard`` request
        carries the coordinator's plan-relevant fields, which are applied
        over this base (``EngineConfig.replace``) — so the backend and
        precision that determine the numbers always come from the
        coordinator, while purely local fields stay the operator's choice.
    host, port:
        Listen address; port 0 binds an ephemeral port (read it back from
        :attr:`port` after :meth:`start`).
    name:
        Provenance label stamped into every produced partial's ``details``
        (and therefore into accumulator overlap diagnostics).
    cache_size:
        Capacity of the digest-keyed shard-plan cache.
    """

    def __init__(
        self,
        config: EngineConfig | None = None,
        host: str = "127.0.0.1",
        port: int = 0,
        name: str | None = None,
        cache_size: int = 32,
    ) -> None:
        self.config = config if config is not None else EngineConfig()
        self.host = host
        self.port = int(port)
        self.name = name or f"worker-{os.getpid()}"
        self.plan_cache = PlanCache(maxsize=cache_size)
        self.served = 0
        self._programs: dict[str, Any] = {}
        self._yets = InMemoryYetStore()
        self._sources: dict[tuple, Any] = {}
        self._engines: dict[str, AggregateRiskEngine] = {}
        self._stacks: "OrderedDict[tuple, Any]" = OrderedDict()
        self._exec_lock = threading.Lock()
        self._state_lock = threading.Lock()
        self._shutdown = threading.Event()
        self._listener: socket.socket | None = None
        self._accept_thread: threading.Thread | None = None
        self._connections: "set[socket.socket]" = set()

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    @property
    def address(self) -> str:
        """The bound ``"host:port"`` address (after :meth:`start`)."""
        return format_address(self.host, self.port)

    def start(self) -> "FleetWorker":
        """Bind the listener and start accepting connections."""
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self.host, self.port))
        listener.listen(16)
        listener.settimeout(0.25)
        self.host, self.port = listener.getsockname()[:2]
        self._listener = listener
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name=f"are-worker-{self.port}", daemon=True
        )
        self._accept_thread.start()
        return self

    def wait(self, timeout: float | None = None) -> bool:
        """Block until a shutdown is requested, then close the listener.

        Returns ``True`` when the worker shut down within ``timeout``
        (``None`` waits forever); ``False`` leaves it serving.
        """
        if not self._shutdown.wait(timeout):
            return False
        self.stop()
        return True

    def is_serving(self) -> bool:
        """Whether the accept loop is live (started and not shut down)."""
        return self._listener is not None and not self._shutdown.is_set()

    def request_shutdown(self) -> None:
        """Ask the accept loop to stop (safe from any thread)."""
        self._shutdown.set()

    def stop(self) -> None:
        """Stop accepting, close open connections, release the listener."""
        self._shutdown.set()
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=5.0)
            self._accept_thread = None
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:  # pragma: no cover - teardown best-effort
                pass
            self._listener = None
        with self._state_lock:
            connections = list(self._connections)
        for conn in connections:
            try:
                conn.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                conn.close()
            except OSError:  # pragma: no cover - teardown best-effort
                pass
        for engine in self._engines.values():
            engine.close()

    def __enter__(self) -> "FleetWorker":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    def stats_line(self) -> str:
        """The shutdown stats line — the same shape ``are serve`` prints."""
        return f"served {self.served} requests | {self.plan_cache.stats.summary()}"

    def cache_stats(self) -> CacheStats:
        """Shard-plan cache counters."""
        return self.plan_cache.stats

    # ------------------------------------------------------------------ #
    # Connection handling
    # ------------------------------------------------------------------ #
    def _accept_loop(self) -> None:
        assert self._listener is not None
        while not self._shutdown.is_set():
            try:
                conn, _ = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                break
            with self._state_lock:
                self._connections.add(conn)
            thread = threading.Thread(
                target=self._serve_connection, args=(conn,), daemon=True
            )
            thread.start()

    def _serve_connection(self, conn: socket.socket) -> None:
        stream = conn.makefile("rwb")
        try:
            while not self._shutdown.is_set():
                try:
                    document, payload = recv_frame(stream)
                except (ConnectionError, OSError, ValueError):
                    break
                request_id = document.get("id")
                try:
                    reply, reply_payload = self._dispatch(document, payload)
                except MissingArtifact as exc:
                    reply = error_payload(exc)
                    reply["error"]["missing"] = exc.missing
                    reply_payload = None
                except Exception as exc:  # noqa: BLE001 - the loop must survive any request
                    reply = error_payload(exc)
                    reply_payload = None
                if request_id is not None:
                    reply["id"] = request_id
                try:
                    send_frame(stream, reply, reply_payload)
                except (ConnectionError, OSError):
                    break
                if document.get("op") == "shutdown":
                    break
        finally:
            with self._state_lock:
                self._connections.discard(conn)
            try:
                stream.close()
            except OSError:
                pass
            try:
                conn.close()
            except OSError:
                pass

    # ------------------------------------------------------------------ #
    # Ops
    # ------------------------------------------------------------------ #
    def _dispatch(
        self, document: Mapping[str, Any], payload: bytes | None
    ) -> Tuple[dict, bytes | None]:
        op = document.get("op")
        if op == "ping":
            return {"ok": True, "worker": self.name}, None
        if op == "status":
            return self._status(), None
        if op == "put_program":
            return self._put_program(document, payload), None
        if op == "put_yet":
            return self._put_yet(document, payload), None
        if op == "run_shard":
            return self._run_shard(document)
        if op == "shutdown":
            self.request_shutdown()
            return {"ok": True, "stopping": True, "stats": self.stats_line()}, None
        raise ValueError(f"unknown op {op!r}")

    def _status(self) -> dict:
        with self._state_lock:
            programs = sorted(self._programs)
            yets = self._yets.keys()
        return {
            "ok": True,
            "worker": self.name,
            "backend": self.config.backend,
            "served": self.served,
            "programs": programs,
            "yets": yets,
            "plan_cache": {
                "entries": self.plan_cache.stats.entries,
                "hits": self.plan_cache.stats.hits,
                "misses": self.plan_cache.stats.misses,
            },
        }

    def _put_program(self, document: Mapping[str, Any], payload: bytes | None) -> dict:
        if payload is None:
            raise ValueError("put_program requires a pickled program payload")
        claimed = str(document["digest"])
        program = pickle.loads(payload)
        actual = program_digest(program)
        if actual != claimed:
            raise ValueError(
                f"program digest mismatch: payload hashes to {actual[:12]}…, "
                f"request claims {claimed[:12]}…"
            )
        with self._state_lock:
            self._programs[claimed] = program
        return {"ok": True, "stored": claimed}

    def _put_yet(self, document: Mapping[str, Any], payload: bytes | None) -> dict:
        if payload is None:
            raise ValueError("put_yet requires a YET payload")
        digest = str(document["digest"])
        with self._state_lock:
            self._yets.put_bytes(digest, payload)
        return {"ok": True, "stored": digest}

    def _source_for(self, ref: Mapping[str, Any]):
        """A (cached) shard source for a store reference.

        Sources are cached per reference so a local-dir store is mmap'd
        once per worker, not once per shard — concurrent workers each hold
        their own read-only mapping of the same files.
        """
        kind = ref.get("kind")
        key = (kind, ref.get("path") or ref.get("digest"))
        with self._state_lock:
            source = self._sources.get(key)
            if source is None:
                source = resolve_yet_ref(ref, inline_store=self._yets)
                self._sources[key] = source
        return source

    def _engine_for(self, config: EngineConfig) -> Tuple[AggregateRiskEngine, str]:
        digest = config_digest(config)
        with self._state_lock:
            engine = self._engines.get(digest)
            if engine is None:
                engine = self._engines[digest] = AggregateRiskEngine(config)
        return engine, digest

    def _run_shard(self, document: Mapping[str, Any]) -> Tuple[dict, bytes]:
        prog_digest = str(document["program"])
        yet_ref = document.get("yet") or {}
        start, stop = (int(v) for v in document["trials"])
        trials = TrialRange(start, stop)

        missing: dict[str, str] = {}
        with self._state_lock:
            program = self._programs.get(prog_digest)
        if program is None:
            missing["program"] = prog_digest
        if yet_ref.get("kind") == InMemoryYetStore.kind and not self._yets.contains(
            str(yet_ref.get("digest"))
        ):
            missing["yet"] = str(yet_ref.get("digest"))
        if missing:
            raise MissingArtifact(missing)

        overrides = decode_config_overrides(document.get("config") or {})
        config = self.config.replace(**overrides) if overrides else self.config
        engine, cfg_digest = self._engine_for(config)
        source = self._source_for(yet_ref)

        yet_key = yet_ref.get("digest") or yet_ref.get("path")
        plan_key = (prog_digest, yet_key, cfg_digest, start, stop)
        stack_key = (prog_digest, cfg_digest)

        def build():
            shard_yet = source.shard(trials)
            plan = PlanBuilder.from_program(program, shard_yet)
            with self._state_lock:
                stack = self._stacks.get(stack_key)
            if stack is not None:
                # Adopt the fused stack built pricing an earlier shard of
                # this workload — the warm-worker analogue of run_sharded's
                # shared-stack loop.
                plan.adopt_stack(stack)
            return plan

        plan, was_hit = self.plan_cache.get_or_build(plan_key, build)
        with self._exec_lock:
            result = engine.run_plan(plan)
        if plan.cached_stack is not None:
            with self._state_lock:
                if stack_key not in self._stacks:
                    self._stacks[stack_key] = plan.cached_stack
                    while len(self._stacks) > _MAX_STACKS:
                        self._stacks.popitem(last=False)

        partial = PartialResult.from_result(result, trials=trials)
        partial = replace(
            partial,
            details={**partial.details, "worker": self.name, "plan_cache_hit": was_hit},
        )
        with self._state_lock:
            self.served += 1
        reply = {
            "ok": True,
            "worker": self.name,
            "trials": [trials.start, trials.stop],
            "wall_seconds": result.wall_seconds,
            "plan_cache_hit": was_hit,
        }
        return reply, partial.to_bytes()


# --------------------------------------------------------------------------- #
# Subprocess helper (tests, benchmarks, worker-kill drills)
# --------------------------------------------------------------------------- #
def _worker_process_main(config: EngineConfig, host: str, name: str, port_queue) -> None:
    worker = FleetWorker(config=config, host=host, name=name)
    worker.start()
    port_queue.put(worker.port)
    worker.wait()


class WorkerProcess:
    """A fleet worker in a child process, killable mid-run.

    ``start`` blocks until the child reports its bound ephemeral port.
    ``stop`` asks for a graceful shutdown; ``kill`` SIGKILLs the child —
    the failure mode the coordinator's shard-reassignment path is tested
    against.  Spawned (not forked): a worker owns threads and sockets that
    must not be inherited mid-state.
    """

    def __init__(
        self,
        config: EngineConfig | None = None,
        host: str = "127.0.0.1",
        name: str | None = None,
    ) -> None:
        import multiprocessing

        self.config = config if config is not None else EngineConfig()
        self.host = host
        self.name = name or "worker-proc"
        self.port: int | None = None
        self._ctx = multiprocessing.get_context("spawn")
        self._process = None
        self._queue = None

    @property
    def address(self) -> str:
        if self.port is None:
            raise RuntimeError("worker process not started")
        return format_address(self.host, self.port)

    def start(self, timeout: float = 60.0) -> "WorkerProcess":
        self._queue = self._ctx.Queue()
        self._process = self._ctx.Process(
            target=_worker_process_main,
            args=(self.config, self.host, self.name, self._queue),
            daemon=True,
        )
        self._process.start()
        self.port = int(self._queue.get(timeout=timeout))
        return self

    def kill(self) -> None:
        """SIGKILL the worker (simulates a died/unplugged machine)."""
        if self._process is not None:
            self._process.kill()
            self._process.join(timeout=10.0)

    def stop(self) -> None:
        """Graceful shutdown via the protocol, escalating to kill."""
        if self._process is None:
            return
        if self._process.is_alive() and self.port is not None:
            try:
                with socket.create_connection((self.host, self.port), timeout=5.0) as conn:
                    stream = conn.makefile("rwb")
                    send_frame(stream, {"op": "shutdown"})
                    recv_frame(stream)
            except (OSError, ConnectionError):
                pass
            self._process.join(timeout=10.0)
        if self._process.is_alive():
            self.kill()
        self._process = None

    def is_alive(self) -> bool:
        return self._process is not None and self._process.is_alive()

    def __enter__(self) -> "WorkerProcess":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
