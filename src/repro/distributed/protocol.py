"""The fleet wire protocol: NDJSON control lines framing binary payloads.

The control channel is the NDJSON idiom proven by
:mod:`repro.service.server` — one JSON document per line, ``"id"`` echoed
verbatim, errors as structured ``{"error": {...}}`` documents.  Binary
data (serialized :class:`~repro.core.results.PartialResult` blocks,
inline-shipped Year Event Tables, pickled programs) rides *under* the
control channel: a document carrying ``"nbytes": N`` is followed by
exactly ``N`` raw bytes on the same stream, in both directions.  Framing
lives here so the worker and the coordinator cannot disagree about it.

Requests (coordinator → worker)::

    {"op": "ping"}
    {"op": "status"}
    {"op": "put_program", "digest": d, "nbytes": N}   + pickled program
    {"op": "put_yet",     "digest": d, "nbytes": N}   + yet_to_bytes blob
    {"op": "run_shard",   "program": d, "yet": REF,
     "config": FIELDS, "trials": [start, stop]}
    {"op": "shutdown"}

``REF`` is a YET store reference (:mod:`repro.yet.stores`); ``FIELDS`` is
the plan-relevant config dict of :func:`repro.service.digests.plan_relevant_config`
in its JSON form (:func:`encode_config` / :func:`decode_config_overrides`).
A successful ``run_shard`` answers ``{"ok": true, ..., "nbytes": N}``
followed by the :meth:`~repro.core.results.PartialResult.to_bytes` payload.

A worker that lacks a referenced artifact answers a structured
``MissingArtifact`` error naming every missing digest; the coordinator
ships the artifacts and resends — so the *first* request for a workload
carries the program (and, inline deployments, the YET) exactly once, and
every later request is digests only.

``put_program`` payloads are **pickled** program objects: the protocol is
for a trusted fleet (your own workers on your own network), the same trust
model as multiprocessing itself.  The worker re-derives the content digest
from the unpickled program and rejects a mismatch, so a corrupted or
mislabeled artifact can never silently price the wrong book.
"""

from __future__ import annotations

import json
from typing import Any, BinaryIO, Mapping, Tuple

from repro.core.config import EngineConfig
from repro.parallel.scheduling import SchedulingPolicy
from repro.service.digests import plan_relevant_config

__all__ = [
    "MissingArtifact",
    "WorkerError",
    "encode_config",
    "decode_config_overrides",
    "parse_address",
    "recv_frame",
    "send_frame",
]

#: Refuse to frame payloads beyond this (a corrupted length prefix must not
#: turn into an attempted multi-gigabyte allocation).
MAX_PAYLOAD_BYTES = 1 << 34


class MissingArtifact(LookupError):
    """The worker lacks an artifact the request references by digest.

    ``missing`` maps artifact kind (``"program"`` / ``"yet"``) to the
    missing digest.  On the wire this becomes ``{"error": {"type":
    "MissingArtifact", "missing": {...}}}``; the coordinator's reaction is
    to ship the artifacts and resend, not to fail.
    """

    def __init__(self, missing: Mapping[str, str]) -> None:
        self.missing = dict(missing)
        super().__init__(
            "worker is missing artifacts: "
            + ", ".join(f"{kind} {digest[:12]}…" for kind, digest in self.missing.items())
        )


class WorkerError(RuntimeError):
    """A worker answered a structured error (other than a missing artifact).

    Attributes
    ----------
    type:
        The remote exception's class name from the error payload.
    """

    def __init__(self, message: str, type: str = "WorkerError") -> None:
        super().__init__(message)
        self.type = type


def parse_address(address: str | Tuple[str, int]) -> Tuple[str, int]:
    """``"host:port"`` (or an already-split pair) → ``(host, port)``."""
    if isinstance(address, tuple):
        host, port = address
        return str(host), int(port)
    host, sep, port = str(address).rpartition(":")
    if not sep or not host:
        raise ValueError(f"expected HOST:PORT, got {address!r}")
    return host, int(port)


def format_address(host: str, port: int) -> str:
    """The canonical ``"host:port"`` form of a worker address."""
    return f"{host}:{port}"


# --------------------------------------------------------------------------- #
# Framing
# --------------------------------------------------------------------------- #
def send_frame(
    stream: BinaryIO, document: Mapping[str, Any], payload: bytes | None = None
) -> None:
    """Write one control line (and its binary payload, if any) and flush.

    ``payload`` sets the document's ``"nbytes"`` key; a document must never
    carry that key itself — the framing owns it.
    """
    doc = dict(document)
    if payload is not None:
        doc["nbytes"] = len(payload)
    elif "nbytes" in doc:
        raise ValueError("'nbytes' is reserved for the framing layer")
    stream.write((json.dumps(doc, sort_keys=True) + "\n").encode("utf-8"))
    if payload is not None:
        stream.write(payload)
    stream.flush()


def recv_frame(stream: BinaryIO) -> Tuple[dict, bytes | None]:
    """Read one control line and its payload; ``ConnectionError`` on EOF."""
    line = stream.readline()
    if not line:
        raise ConnectionError("peer closed the connection")
    document = json.loads(line.decode("utf-8"))
    if not isinstance(document, dict):
        raise ValueError(f"expected a JSON object control line, got {type(document).__name__}")
    payload = None
    nbytes = document.get("nbytes")
    if nbytes is not None:
        nbytes = int(nbytes)
        if not 0 <= nbytes <= MAX_PAYLOAD_BYTES:
            raise ValueError(f"unreasonable payload length {nbytes}")
        payload = stream.read(nbytes)
        if payload is None or len(payload) != nbytes:
            raise ConnectionError(
                f"peer closed mid-payload ({0 if payload is None else len(payload)}"
                f"/{nbytes} bytes)"
            )
    return document, payload


# --------------------------------------------------------------------------- #
# Config codec
# --------------------------------------------------------------------------- #
def encode_config(config: EngineConfig) -> dict:
    """The plan-relevant config fields in JSON-safe wire form.

    Exactly the fields :func:`~repro.service.digests.config_digest` covers —
    shipping them (and only them) is what makes a worker's numbers
    bit-identical to the coordinator's.  The scheduling enum travels as its
    string value.
    """
    fields = plan_relevant_config(config)
    fields["scheduling"] = str(fields["scheduling"])
    return fields


def decode_config_overrides(fields: Mapping[str, Any]) -> dict:
    """Wire config fields → ``EngineConfig.replace`` keyword overrides."""
    overrides = dict(fields)
    if "scheduling" in overrides:
        overrides["scheduling"] = SchedulingPolicy(str(overrides["scheduling"]))
    return overrides
