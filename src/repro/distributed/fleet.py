"""The fleet coordinator: shard queue out, PartialResult stream in.

:class:`FleetEngine` drives a set of :class:`~repro.distributed.worker.FleetWorker`
processes through one analysis.  The trial domain is partitioned into
disjoint shards on a shared **work-stealing queue**: one coordinator thread
per worker pulls the next shard, sends a ``run_shard`` control line, and
folds the streamed :class:`~repro.core.results.PartialResult` straight into
one shared :class:`~repro.core.results.ResultAccumulator` as it arrives —
merge overlaps compute; there is no barrier, and a fast worker simply
prices more shards than a slow one.

Failure semantics (the part a fleet actually needs):

* **timeout + one retry** — a request that times out (or whose connection
  drops) is retried once against the same worker over a fresh connection;
* **death → reassignment** — a worker that fails its retry is marked dead
  and its shard goes back on the queue for the survivors; any ranges still
  uncovered after the threads drain (the race where the queue emptied
  before the death was noticed) are recovered explicitly from
  ``ResultAccumulator.missing_ranges()`` and priced on surviving workers;
* **total loss** — if every worker dies, :class:`FleetError` names the
  missing trial ranges.

Because shard merges are pure column placement, none of this scheduling —
work stealing, retries, reassignment order — can change a single bit of the
final result; the conformance suite pins the merged output to the
monolithic run on every backend.
"""

from __future__ import annotations

import pickle
import socket
import threading
from collections import deque
from typing import Any, Callable, List, Mapping, Sequence, Tuple

from repro.core.config import EngineConfig
from repro.core.results import PartialResult, ResultAccumulator
from repro.parallel.device import WorkloadShape
from repro.parallel.partitioner import TrialRange, shard_partition
from repro.portfolio.layer import Layer
from repro.portfolio.program import ReinsuranceProgram
from repro.service.digests import program_digest, yet_digest
from repro.utils.timing import Timer
from repro.yet.io import YetShardReader, yet_to_bytes
from repro.yet.stores import InMemoryYetStore, LocalDirYetStore
from repro.yet.table import YearEventTable
from repro.distributed.protocol import (
    MissingArtifact,
    WorkerError,
    encode_config,
    parse_address,
    recv_frame,
    send_frame,
)

__all__ = ["FleetEngine", "FleetError", "WorkerClient", "probe_worker"]


class FleetError(RuntimeError):
    """The fleet could not complete the analysis (all workers lost)."""


class WorkerClient:
    """Blocking framed-NDJSON client for one fleet worker.

    One coordinator thread owns one client; the class is not thread-safe.
    ``timeout`` bounds every socket operation — connect, send, and the wait
    for a shard's result — so a hung worker surfaces as ``socket.timeout``
    rather than a stuck fleet.
    """

    def __init__(self, address: str | Tuple[str, int], timeout: float = 120.0) -> None:
        self.host, self.port = parse_address(address)
        self.address = f"{self.host}:{self.port}"
        self.timeout = float(timeout)
        self._sock: socket.socket | None = None
        self._stream = None

    # ------------------------------------------------------------------ #
    # Connection lifecycle
    # ------------------------------------------------------------------ #
    def connect(self) -> "WorkerClient":
        if self._sock is None:
            sock = socket.create_connection((self.host, self.port), timeout=self.timeout)
            sock.settimeout(self.timeout)
            self._sock = sock
            self._stream = sock.makefile("rwb")
        return self

    def reconnect(self) -> "WorkerClient":
        self.close()
        return self.connect()

    def close(self) -> None:
        if self._stream is not None:
            try:
                self._stream.close()
            except OSError:
                pass
            self._stream = None
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def __enter__(self) -> "WorkerClient":
        return self.connect()

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # Requests
    # ------------------------------------------------------------------ #
    def request(
        self, document: Mapping[str, Any], payload: bytes | None = None
    ) -> Tuple[dict, bytes | None]:
        """One request/response exchange; raises on structured errors.

        ``MissingArtifact`` is re-raised as its own type (the caller ships
        and resends); every other ``{"error": ...}`` reply becomes a
        :class:`WorkerError` carrying the remote exception's class name.
        """
        self.connect()
        assert self._stream is not None
        send_frame(self._stream, document, payload)
        reply, reply_payload = recv_frame(self._stream)
        error = reply.get("error")
        if error:
            if error.get("type") == "MissingArtifact":
                raise MissingArtifact(error.get("missing") or {})
            raise WorkerError(
                str(error.get("message")), type=str(error.get("type", "WorkerError"))
            )
        return reply, reply_payload

    def ping(self) -> dict:
        return self.request({"op": "ping"})[0]

    def status(self) -> dict:
        return self.request({"op": "status"})[0]

    def put_program(self, digest: str, payload: bytes) -> dict:
        return self.request({"op": "put_program", "digest": digest}, payload)[0]

    def put_yet(self, digest: str, payload: bytes) -> dict:
        return self.request({"op": "put_yet", "digest": digest}, payload)[0]

    def run_shard(
        self,
        program_digest: str,
        yet_ref: Mapping[str, Any],
        config_fields: Mapping[str, Any],
        trials: TrialRange,
    ) -> PartialResult:
        reply, payload = self.request(
            {
                "op": "run_shard",
                "program": program_digest,
                "yet": dict(yet_ref),
                "config": dict(config_fields),
                "trials": [trials.start, trials.stop],
            }
        )
        if payload is None:
            raise WorkerError(f"worker {self.address} answered run_shard without a payload")
        return PartialResult.from_bytes(payload)

    def shutdown(self) -> dict:
        return self.request({"op": "shutdown"})[0]


def probe_worker(address: str, timeout: float = 2.0) -> dict:
    """Reachability probe of one worker address (``are backends`` row).

    Never raises: an unreachable or misbehaving worker reports
    ``{"reachable": False, "error": ...}``.
    """
    try:
        with WorkerClient(address, timeout=timeout) as client:
            reply = client.ping()
        return {"reachable": True, "worker": reply.get("worker")}
    except Exception as exc:  # noqa: BLE001 - a probe must never raise
        return {"reachable": False, "error": str(exc)}


class _WorkerState:
    """One worker's coordinator-side bookkeeping."""

    def __init__(self, client: WorkerClient) -> None:
        self.client = client
        self.alive = True
        self.shards_done = 0
        self.shipped_program = False
        self.shipped_yet = False


class FleetEngine:
    """Coordinate one analysis across a fleet of socket workers.

    Parameters
    ----------
    workers:
        Worker addresses (``"host:port"`` strings or ``(host, port)``
        pairs).  At least one is required.
    config:
        The engine config whose plan-relevant fields every worker executes
        under (shipped with each shard request) — and whose backend names
        the merged result.
    timeout:
        Per-request socket timeout; a request that exceeds it is retried
        once on a fresh connection before the worker is declared dead.
    """

    def __init__(
        self,
        workers: Sequence[str | Tuple[str, int]],
        config: EngineConfig | None = None,
        timeout: float = 120.0,
    ) -> None:
        if not workers:
            raise ValueError("a fleet needs at least one worker address")
        self.config = config if config is not None else EngineConfig()
        self.timeout = float(timeout)
        self._states = [
            _WorkerState(WorkerClient(address, timeout=self.timeout))
            for address in workers
        ]

    @property
    def worker_addresses(self) -> List[str]:
        return [state.client.address for state in self._states]

    def close(self) -> None:
        for state in self._states:
            state.client.close()

    def __enter__(self) -> "FleetEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # The run
    # ------------------------------------------------------------------ #
    def run(
        self,
        program: ReinsuranceProgram | Layer,
        source: YearEventTable | YetShardReader,
        n_shards: int = 0,
        on_partial: Callable[[PartialResult], None] | None = None,
    ):
        """Price ``program`` over ``source`` on the fleet; exact merge.

        ``source`` is an in-memory YET (shipped to each worker once,
        digest-cached there) or a :class:`~repro.yet.io.YetShardReader`
        whose store directory every worker can reach on a shared
        filesystem (workers mmap it independently and materialise only
        their own shards).  ``n_shards`` defaults to two shards per worker
        (work stealing needs more shards than workers to balance), or the
        config's ``trial_shards`` when that is larger.  ``on_partial`` is
        called (on a coordinator thread) after each block is accumulated —
        the hook the progress displays and the worker-kill drill use.
        """
        program = ReinsuranceProgram.wrap(program)
        prog_digest = program_digest(program)
        config_fields = encode_config(self.config)
        yet_ref, yet_bytes_factory, n_trials, mean_events = self._describe_source(source)

        count = n_shards or max(self.config.trial_shards, 2 * len(self._states))
        shard_queue: "deque[TrialRange]" = deque(shard_partition(n_trials, count))
        total_shards = len(shard_queue)

        wall = Timer().start()
        accumulator = ResultAccumulator(
            program.n_layers, n_trials, row_names=program.layer_names
        )
        lock = threading.Lock()
        program_bytes: List[bytes | None] = [None]  # pickled lazily, at most once
        retries = [0]
        ship = _ArtifactShipper(
            prog_digest, program, program_bytes, yet_ref, yet_bytes_factory
        )

        def worker_loop(state: _WorkerState) -> None:
            while True:
                with lock:
                    if not shard_queue:
                        return
                    trials = shard_queue.popleft()
                try:
                    partial = self._run_shard_with_retry(
                        state, trials, prog_digest, yet_ref, config_fields, ship
                    )
                except _WorkerLost:
                    with lock:
                        state.alive = False
                        shard_queue.append(trials)
                        retries[0] += 1
                    return
                with lock:
                    accumulator.add(partial)
                    state.shards_done += 1
                if on_partial is not None:
                    on_partial(partial)

        threads = [
            threading.Thread(
                target=worker_loop,
                args=(state,),
                name=f"fleet-{state.client.address}",
                daemon=True,
            )
            for state in self._states
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        reassigned = self._reassign_missing(
            accumulator, prog_digest, yet_ref, config_fields, ship, on_partial
        )

        gaps = accumulator.missing_ranges()
        if gaps:
            ranges = ", ".join(f"[{g.start}, {g.stop})" for g in gaps)
            raise FleetError(
                f"fleet lost trial ranges {ranges}: no surviving worker "
                f"(workers: {', '.join(self.worker_addresses)})"
            )

        shape = WorkloadShape(
            n_trials=n_trials,
            events_per_trial=max(mean_events, 1e-9),
            n_elts=max(int(round(program.mean_elts_per_layer)), 1),
            n_layers=program.n_layers,
        )
        dead = [s.client.address for s in self._states if not s.alive]
        return accumulator.finalize(
            self.config.backend,
            wall_seconds=wall.stop(),
            workload_shape=shape,
            details={
                "fleet": {
                    "workers": self.worker_addresses,
                    "shards_per_worker": {
                        s.client.address: s.shards_done for s in self._states
                    },
                    "n_shards": total_shards,
                    "dead_workers": dead,
                    "requeued_shards": retries[0],
                    "reassigned_ranges": reassigned,
                },
            },
        )

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _describe_source(self, source):
        """``(ref, inline-bytes factory, n_trials, mean events/trial)``."""
        if isinstance(source, YearEventTable):
            digest = yet_digest(source)
            ref = {"kind": InMemoryYetStore.kind, "digest": digest}
            return ref, (lambda: yet_to_bytes(source)), source.n_trials, (
                source.mean_events_per_trial
            )
        if isinstance(source, YetShardReader):
            ref = {"kind": LocalDirYetStore.kind, "path": str(source.path.resolve())}
            return ref, None, source.n_trials, source.mean_events_per_trial
        raise TypeError(
            "source must be a YearEventTable or a YetShardReader, got "
            f"{type(source).__name__}"
        )

    def _run_shard_with_retry(
        self,
        state: _WorkerState,
        trials: TrialRange,
        prog_digest: str,
        yet_ref: Mapping[str, Any],
        config_fields: Mapping[str, Any],
        ship: "_ArtifactShipper",
    ) -> PartialResult:
        """One shard on one worker: ship-on-missing, then timeout + one retry."""
        for attempt in (0, 1):
            try:
                try:
                    return state.client.run_shard(
                        prog_digest, yet_ref, config_fields, trials
                    )
                except MissingArtifact as exc:
                    # Not a failure: ship what the worker asked for, resend.
                    ship.ship(state, exc.missing)
                    return state.client.run_shard(
                        prog_digest, yet_ref, config_fields, trials
                    )
            except (socket.timeout, ConnectionError, OSError, EOFError):
                if attempt == 1:
                    break
                try:
                    state.client.reconnect()
                except OSError:
                    break
                # A fresh connection forgets nothing worker-side (the caches
                # are per-worker, not per-connection), so the retry is warm.
                continue
            except WorkerError:
                # The worker is alive but rejected the request — that is a
                # programming error, not a transport failure; surface it.
                raise
        state.client.close()
        raise _WorkerLost(state.client.address)

    def _reassign_missing(
        self,
        accumulator: ResultAccumulator,
        prog_digest: str,
        yet_ref: Mapping[str, Any],
        config_fields: Mapping[str, Any],
        ship: "_ArtifactShipper",
        on_partial: Callable[[PartialResult], None] | None,
    ) -> int:
        """Price any still-missing ranges on surviving workers.

        Covers the drain race: a worker can die after the queue emptied, so
        its requeued shard was never picked up.  ``missing_ranges()`` is the
        ground truth of what remains — the reassignment loop prices each gap
        on the next surviving worker until the domain is tiled or no
        survivors remain.
        """
        reassigned = 0
        while True:
            gaps = accumulator.missing_ranges()
            survivors = [s for s in self._states if s.alive]
            if not gaps or not survivors:
                return reassigned
            progressed = False
            for trials in gaps:
                state = next((s for s in self._states if s.alive), None)
                if state is None:
                    return reassigned
                try:
                    partial = self._run_shard_with_retry(
                        state, trials, prog_digest, yet_ref, config_fields, ship
                    )
                except _WorkerLost:
                    state.alive = False
                    continue
                accumulator.add(partial)
                if on_partial is not None:
                    on_partial(partial)
                reassigned += 1
                progressed = True
            if not progressed:
                return reassigned


class _WorkerLost(RuntimeError):
    """A worker failed its retry and is considered dead (internal signal)."""


class _ArtifactShipper:
    """Ships missing artifacts to a worker, serialising the program once."""

    def __init__(
        self,
        prog_digest: str,
        program: ReinsuranceProgram,
        program_bytes: List[bytes | None],
        yet_ref: Mapping[str, Any],
        yet_bytes_factory: Callable[[], bytes] | None,
    ) -> None:
        self._prog_digest = prog_digest
        self._program = program
        self._program_bytes = program_bytes
        self._yet_ref = yet_ref
        self._yet_bytes_factory = yet_bytes_factory
        self._yet_bytes: bytes | None = None
        self._lock = threading.Lock()

    def ship(self, state: _WorkerState, missing: Mapping[str, str]) -> None:
        if "program" in missing:
            with self._lock:
                if self._program_bytes[0] is None:
                    self._program_bytes[0] = pickle.dumps(self._program)
                payload = self._program_bytes[0]
            state.client.put_program(self._prog_digest, payload)
            state.shipped_program = True
        if "yet" in missing:
            if self._yet_bytes_factory is None:
                raise WorkerError(
                    f"worker {state.client.address} reports the YET store "
                    f"{self._yet_ref} missing, but it is a filesystem reference "
                    "the coordinator cannot ship — check the shared mount"
                )
            with self._lock:
                if self._yet_bytes is None:
                    self._yet_bytes = self._yet_bytes_factory()
                payload = self._yet_bytes
            state.client.put_yet(str(self._yet_ref.get("digest")), payload)
            state.shipped_yet = True
