"""The Year Loss Table container.

A :class:`YearLossTable` stores, for each layer of a program, the loss of
every simulated trial (year).  The engine additionally records each trial's
largest single occurrence loss when asked, which is what the occurrence
exceedance-probability (OEP) curve is computed from.
"""

from __future__ import annotations

from typing import Iterator, Mapping, Sequence

import numpy as np

__all__ = ["YearLossTable"]


class YearLossTable:
    """Per-layer, per-trial year losses.

    Parameters
    ----------
    losses:
        ``(n_layers, n_trials)`` array of year (aggregate) losses net of all
        terms — the paper's ``lr`` per trial, one row per layer.
    layer_names:
        Names of the layers (row labels); defaults to ``layer_0..layer_{n-1}``.
    max_occurrence_losses:
        Optional ``(n_layers, n_trials)`` array of each trial's largest single
        occurrence loss net of occurrence terms (for OEP curves).
    """

    def __init__(
        self,
        losses: np.ndarray,
        layer_names: Sequence[str] | None = None,
        max_occurrence_losses: np.ndarray | None = None,
    ) -> None:
        array = np.ascontiguousarray(losses, dtype=np.float64)
        if array.ndim == 1:
            array = array.reshape(1, -1)
        if array.ndim != 2:
            raise ValueError(f"losses must be 1-D or 2-D, got shape {array.shape}")
        if np.any(array < 0):
            raise ValueError("year losses must be non-negative")
        if np.any(~np.isfinite(array)):
            raise ValueError("year losses must be finite")
        self.losses = array

        if layer_names is None:
            layer_names = [f"layer_{i}" for i in range(self.n_layers)]
        if len(layer_names) != self.n_layers:
            raise ValueError(
                f"expected {self.n_layers} layer names, got {len(layer_names)}"
            )
        self.layer_names: tuple[str, ...] = tuple(str(n) for n in layer_names)

        if max_occurrence_losses is not None:
            occ = np.ascontiguousarray(max_occurrence_losses, dtype=np.float64)
            if occ.ndim == 1:
                occ = occ.reshape(1, -1)
            if occ.shape != self.losses.shape:
                raise ValueError(
                    f"max_occurrence_losses shape {occ.shape} does not match "
                    f"losses shape {self.losses.shape}"
                )
            self.max_occurrence_losses = occ
        else:
            self.max_occurrence_losses = None

    # ------------------------------------------------------------------ #
    # Shape accessors
    # ------------------------------------------------------------------ #
    @property
    def n_layers(self) -> int:
        """Number of layers (rows)."""
        return int(self.losses.shape[0])

    @property
    def n_trials(self) -> int:
        """Number of trials (columns)."""
        return int(self.losses.shape[1])

    def __len__(self) -> int:
        return self.n_trials

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"YearLossTable(n_layers={self.n_layers}, n_trials={self.n_trials})"

    # ------------------------------------------------------------------ #
    # Views
    # ------------------------------------------------------------------ #
    def layer(self, index_or_name: int | str) -> np.ndarray:
        """Year losses of one layer (by row index or name)."""
        index = self._resolve(index_or_name)
        return self.losses[index]

    def layer_max_occurrence(self, index_or_name: int | str) -> np.ndarray:
        """Largest occurrence loss per trial for one layer (if recorded)."""
        if self.max_occurrence_losses is None:
            raise ValueError("this YLT does not record per-trial maximum occurrence losses")
        index = self._resolve(index_or_name)
        return self.max_occurrence_losses[index]

    def _resolve(self, index_or_name: int | str) -> int:
        if isinstance(index_or_name, str):
            try:
                return self.layer_names.index(index_or_name)
            except ValueError as exc:
                raise KeyError(f"no layer named {index_or_name!r}") from exc
        index = int(index_or_name)
        if not 0 <= index < self.n_layers:
            raise IndexError(f"layer index {index} out of range [0, {self.n_layers})")
        return index

    def iter_layers(self) -> Iterator[tuple[str, np.ndarray]]:
        """Iterate over (layer name, year losses) pairs."""
        for name, row in zip(self.layer_names, self.losses):
            yield name, row

    # ------------------------------------------------------------------ #
    # Aggregation
    # ------------------------------------------------------------------ #
    def portfolio_losses(self) -> np.ndarray:
        """Per-trial portfolio loss: the sum of all layers' year losses."""
        return self.losses.sum(axis=0)

    def portfolio_max_occurrence(self) -> np.ndarray:
        """Per-trial portfolio-level maximum occurrence loss (if recorded).

        Note: this sums the layers' maxima, which is an upper bound on the
        true portfolio occurrence maximum (the layers' worst occurrences may
        be different events); it is the standard conservative roll-up.
        """
        if self.max_occurrence_losses is None:
            raise ValueError("this YLT does not record per-trial maximum occurrence losses")
        return self.max_occurrence_losses.sum(axis=0)

    def merged_with(self, other: "YearLossTable") -> "YearLossTable":
        """Stack another YLT's layers below this one (same trial count required)."""
        if other.n_trials != self.n_trials:
            raise ValueError(
                f"cannot merge YLTs with different trial counts "
                f"({self.n_trials} vs {other.n_trials})"
            )
        losses = np.vstack([self.losses, other.losses])
        names = self.layer_names + other.layer_names
        occ = None
        if self.max_occurrence_losses is not None and other.max_occurrence_losses is not None:
            occ = np.vstack([self.max_occurrence_losses, other.max_occurrence_losses])
        return YearLossTable(losses, names, occ)

    def as_dict(self) -> Mapping[str, np.ndarray]:
        """Mapping of layer name to its year-loss vector (views, not copies)."""
        return {name: row for name, row in self.iter_layers()}

    @classmethod
    def single_layer(
        cls,
        losses: np.ndarray,
        name: str = "layer_0",
        max_occurrence_losses: np.ndarray | None = None,
    ) -> "YearLossTable":
        """Convenience constructor for a one-layer YLT."""
        occ = None if max_occurrence_losses is None else np.asarray(max_occurrence_losses)
        return cls(np.asarray(losses, dtype=np.float64).reshape(1, -1), [name],
                   None if occ is None else occ.reshape(1, -1))
