"""Exceedance-probability curves.

Two curves are standard in catastrophe risk reporting:

* the **Aggregate Exceedance Probability (AEP)** curve — the probability that
  the *annual aggregate* loss exceeds a threshold, estimated from the year
  losses of the YLT;
* the **Occurrence Exceedance Probability (OEP)** curve — the probability that
  the *largest single occurrence* loss in a year exceeds a threshold,
  estimated from the per-trial maximum occurrence losses.

Both are empirical curves over the Monte-Carlo trials; the PML at a return
period of ``R`` years is the loss quantile at exceedance probability ``1/R``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.validation import ensure_positive

__all__ = [
    "EPCurve",
    "aep_curve",
    "aep_curve_from_blocks",
    "oep_curve",
    "oep_curve_from_blocks",
]


@dataclass(frozen=True)
class EPCurve:
    """An empirical exceedance-probability curve.

    Attributes
    ----------
    losses:
        Loss thresholds in descending exceedance-probability order (i.e.
        ascending loss order).
    exceedance_probabilities:
        Estimated probability that the annual (or occurrence) loss strictly
        exceeds the corresponding threshold.
    kind:
        ``"AEP"`` or ``"OEP"``.
    """

    losses: np.ndarray
    exceedance_probabilities: np.ndarray
    kind: str = "AEP"

    def __post_init__(self) -> None:
        losses = np.asarray(self.losses, dtype=np.float64)
        probs = np.asarray(self.exceedance_probabilities, dtype=np.float64)
        if losses.shape != probs.shape or losses.ndim != 1:
            raise ValueError("losses and exceedance_probabilities must be equal-length 1-D arrays")
        if losses.size and np.any(np.diff(losses) < 0):
            raise ValueError("losses must be non-decreasing")
        if probs.size and (probs.min() < 0.0 or probs.max() > 1.0):
            raise ValueError("exceedance probabilities must lie in [0, 1]")
        if probs.size and np.any(np.diff(probs) > 1e-12):
            raise ValueError("exceedance probabilities must be non-increasing")
        object.__setattr__(self, "losses", losses)
        object.__setattr__(self, "exceedance_probabilities", probs)

    @property
    def n_points(self) -> int:
        """Number of points on the curve."""
        return int(self.losses.shape[0])

    def loss_at_return_period(self, return_period_years: float) -> float:
        """Loss at the given return period (the PML at that return period).

        The return period ``R`` corresponds to exceedance probability
        ``1 / R``; the curve is interpolated linearly in probability, and
        clamped to its endpoints outside the observed range.
        """
        ensure_positive(return_period_years, "return_period_years")
        target = 1.0 / return_period_years
        if self.n_points == 0:
            return 0.0
        probs = self.exceedance_probabilities
        losses = self.losses
        if target >= probs[0]:
            return float(losses[0])
        if target <= probs[-1]:
            return float(losses[-1])
        # probs is non-increasing; interpolate on the reversed arrays.
        return float(np.interp(target, probs[::-1], losses[::-1]))

    def exceedance_probability(self, loss: float) -> float:
        """Estimated probability of exceeding ``loss`` in a year."""
        if loss < 0:
            raise ValueError(f"loss must be non-negative, got {loss}")
        if self.n_points == 0:
            return 0.0
        if loss < self.losses[0]:
            return float(self.exceedance_probabilities[0])
        if loss >= self.losses[-1]:
            return float(self.exceedance_probabilities[-1])
        return float(np.interp(loss, self.losses, self.exceedance_probabilities))

    def return_period(self, loss: float) -> float:
        """Return period (years) of the given loss level (inf if never exceeded)."""
        prob = self.exceedance_probability(loss)
        if prob <= 0.0:
            return float("inf")
        return 1.0 / prob


def _empirical_curve(annual_values: np.ndarray, kind: str, max_points: int | None) -> EPCurve:
    values = np.asarray(annual_values, dtype=np.float64)
    if values.ndim != 1:
        raise ValueError(f"annual values must be 1-D, got shape {values.shape}")
    if values.size == 0:
        raise ValueError("cannot build an EP curve from zero trials")
    if np.any(values < 0):
        raise ValueError("annual values must be non-negative")
    n = values.size
    sorted_losses = np.sort(values)
    # Exceedance probability of the k-th smallest loss (0-based): fraction of
    # trials with a strictly greater loss, estimated as (n - k - 1 + 0.5) / n
    # (the Hazen plotting position, which avoids 0 and 1 at the extremes).
    exceedance = (n - np.arange(1, n + 1) + 0.5) / n
    if max_points is not None and n > max_points:
        idx = np.unique(np.linspace(0, n - 1, max_points).round().astype(np.int64))
        sorted_losses = sorted_losses[idx]
        exceedance = exceedance[idx]
    return EPCurve(sorted_losses, exceedance, kind)


def aep_curve(year_losses: np.ndarray, max_points: int | None = None) -> EPCurve:
    """Aggregate EP curve from per-trial year losses."""
    return _empirical_curve(year_losses, "AEP", max_points)


def oep_curve(max_occurrence_losses: np.ndarray, max_points: int | None = None) -> EPCurve:
    """Occurrence EP curve from per-trial maximum occurrence losses."""
    return _empirical_curve(max_occurrence_losses, "OEP", max_points)


def _concatenate_blocks(blocks) -> np.ndarray:
    arrays = [np.asarray(block, dtype=np.float64).ravel() for block in blocks]
    if not arrays:
        raise ValueError("at least one block of annual values is required")
    return arrays[0] if len(arrays) == 1 else np.concatenate(arrays)


def aep_curve_from_blocks(blocks, max_points: int | None = None) -> EPCurve:
    """AEP curve from per-shard year-loss blocks.

    ``blocks`` is any iterable of 1-D arrays — typically
    :meth:`~repro.core.results.ResultAccumulator.layer_blocks` or
    :meth:`~repro.core.results.ResultAccumulator.portfolio_blocks`.  The
    empirical curve is a function of the *set* of per-trial values, so the
    result is identical to :func:`aep_curve` over the monolithic vector
    regardless of how the trials were sharded.
    """
    return aep_curve(_concatenate_blocks(blocks), max_points)


def oep_curve_from_blocks(blocks, max_points: int | None = None) -> EPCurve:
    """OEP curve from per-shard maximum-occurrence blocks (see :func:`aep_curve_from_blocks`)."""
    return oep_curve(_concatenate_blocks(blocks), max_points)
