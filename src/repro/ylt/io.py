"""Serialization of Year Loss Tables.

A YLT is the hand-off artefact between the aggregate analysis and the
downstream enterprise-risk-management stage (stage three of the paper's
pipeline), so it needs a stable on-disk form.  The format is a compressed
``.npz`` holding the loss matrix, the layer names and (optionally) the
per-trial maximum occurrence losses; it round-trips exactly.
"""

from __future__ import annotations

import os
from pathlib import Path

import numpy as np

from repro.ylt.table import YearLossTable

__all__ = ["save_ylt", "load_ylt"]

_FORMAT_VERSION = 1


def save_ylt(ylt: YearLossTable, path: str | os.PathLike) -> Path:
    """Save a YLT to ``path`` (``.npz`` appended if missing). Returns the path."""
    target = Path(path)
    if target.suffix != ".npz":
        target = target.with_suffix(target.suffix + ".npz")
    meta = np.array(
        [_FORMAT_VERSION, 1 if ylt.max_occurrence_losses is not None else 0], dtype=np.int64
    )
    arrays = {
        "meta": meta,
        "losses": ylt.losses,
        "layer_names": np.array(ylt.layer_names, dtype=np.str_),
    }
    if ylt.max_occurrence_losses is not None:
        arrays["max_occurrence_losses"] = ylt.max_occurrence_losses
    target.parent.mkdir(parents=True, exist_ok=True)
    np.savez_compressed(target, **arrays)
    return target


def load_ylt(path: str | os.PathLike) -> YearLossTable:
    """Load a YLT previously written by :func:`save_ylt`."""
    source = Path(path)
    if not source.exists() and source.suffix != ".npz":
        source = source.with_suffix(source.suffix + ".npz")
    if not source.exists():
        raise FileNotFoundError(f"no such YLT file: {path}")
    with np.load(source) as data:
        meta = data["meta"]
        version = int(meta[0])
        if version != _FORMAT_VERSION:
            raise ValueError(f"unsupported YLT format version {version}")
        has_occurrence = bool(meta[1])
        losses = data["losses"]
        layer_names = [str(name) for name in data["layer_names"]]
        occurrence = data["max_occurrence_losses"] if has_occurrence else None
    return YearLossTable(losses, layer_names, occurrence)
