"""Formatted risk reports.

Plain-text report formatting for the metrics and EP curves; these are what the
examples print and what an underwriter would glance at during the real-time
pricing conversation described in Section IV.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.ylt.ep_curve import EPCurve
from repro.ylt.metrics import RiskMetrics

__all__ = ["format_metrics_report", "format_ep_table", "format_layer_comparison"]


def _money(value: float) -> str:
    """Format a currency amount with thousands separators."""
    return f"{value:,.0f}"


def format_metrics_report(metrics: RiskMetrics, title: str = "Risk metrics") -> str:
    """Multi-line report of one layer's (or the portfolio's) risk metrics."""
    lines = [title, "=" * len(title)]
    lines.append(f"trials analysed      : {metrics.n_trials:,}")
    lines.append(f"average annual loss  : {_money(metrics.aal)}")
    lines.append(f"std of annual loss   : {_money(metrics.std)}")
    lines.append(f"maximum annual loss  : {_money(metrics.max_loss)}")
    if metrics.pml:
        lines.append("PML by return period :")
        for return_period in sorted(metrics.pml):
            lines.append(f"  {return_period:>7.0f} yr : {_money(metrics.pml[return_period])}")
    if metrics.tvar:
        lines.append("TVaR by level        :")
        for level in sorted(metrics.tvar):
            lines.append(f"  {level:>7.1%} : {_money(metrics.tvar[level])}")
    return "\n".join(lines)


def format_ep_table(curve: EPCurve, return_periods: Sequence[float] = (10, 25, 50, 100, 250)) -> str:
    """Fixed-width table of losses at selected return periods."""
    header = f"{curve.kind} curve"
    lines = [header, "-" * len(header), f"{'return period':>15}{'loss':>20}"]
    for return_period in return_periods:
        loss = curve.loss_at_return_period(float(return_period))
        lines.append(f"{return_period:>13.0f}yr{_money(loss):>20}")
    return "\n".join(lines)


def format_layer_comparison(metrics_by_name: Mapping[str, RiskMetrics],
                            return_period: float = 100.0) -> str:
    """Side-by-side comparison of layers: AAL and PML at one return period.

    This is the view an underwriter uses to compare alternative contract
    structures during pricing.
    """
    name_width = max((len(name) for name in metrics_by_name), default=10)
    name_width = max(name_width, len("layer"))
    lines = [f"{'layer':<{name_width}}{'AAL':>18}{f'PML {return_period:.0f}yr':>18}"]
    for name, metrics in metrics_by_name.items():
        pml_value = metrics.pml.get(return_period)
        pml_text = _money(pml_value) if pml_value is not None else "n/a"
        lines.append(f"{name:<{name_width}}{_money(metrics.aal):>18}{pml_text:>18}")
    return "\n".join(lines)
