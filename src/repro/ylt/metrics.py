"""Portfolio risk metrics derived from Year Loss Tables.

These are the "filters (financial functions) ... applied on the aggregate loss
values" of Section II-C and the metrics named in the paper's introduction:

* **AAL** — average annual loss, the mean of the year losses;
* **PML** — probable maximum loss at a return period ``R``: the year-loss
  quantile exceeded with probability ``1/R``;
* **TVaR** — tail value at risk at probability level ``p``: the expected year
  loss conditional on being in the worst ``(1-p)`` fraction of years;
* standard deviation and selected quantiles as supporting statistics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np

from repro.utils.validation import ensure_positive, ensure_probability
from repro.ylt.ep_curve import EPCurve, _concatenate_blocks, aep_curve
from repro.ylt.table import YearLossTable

__all__ = ["aal", "pml", "tvar", "value_at_risk", "RiskMetrics", "compute_risk_metrics",
           "compute_risk_metrics_from_blocks",
           "DEFAULT_RETURN_PERIODS", "DEFAULT_TVAR_LEVELS"]

#: Return periods (years) reported by default: the levels regulators and
#: rating agencies most commonly request.
DEFAULT_RETURN_PERIODS: tuple[float, ...] = (5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0)

#: TVaR probability levels reported by default.
DEFAULT_TVAR_LEVELS: tuple[float, ...] = (0.95, 0.99, 0.996)


def aal(year_losses: np.ndarray) -> float:
    """Average annual loss: the mean of the per-trial year losses."""
    values = np.asarray(year_losses, dtype=np.float64)
    if values.size == 0:
        raise ValueError("cannot compute AAL of zero trials")
    return float(values.mean())


def value_at_risk(year_losses: np.ndarray, probability: float) -> float:
    """Value at Risk: the ``probability`` quantile of the year-loss distribution."""
    values = np.asarray(year_losses, dtype=np.float64)
    if values.size == 0:
        raise ValueError("cannot compute VaR of zero trials")
    ensure_probability(probability, "probability")
    return float(np.quantile(values, probability))


def pml(year_losses: np.ndarray, return_period_years: float) -> float:
    """Probable Maximum Loss at a return period.

    The PML at return period ``R`` is the loss exceeded on average once every
    ``R`` years, i.e. the ``1 - 1/R`` quantile of the year-loss distribution.
    """
    ensure_positive(return_period_years, "return_period_years")
    if return_period_years < 1.0:
        raise ValueError(
            f"return period must be at least 1 year, got {return_period_years}"
        )
    return value_at_risk(year_losses, 1.0 - 1.0 / return_period_years)


def tvar(year_losses: np.ndarray, probability: float) -> float:
    """Tail Value at Risk at probability level ``probability``.

    The expected year loss conditional on the loss being at or above the
    ``probability`` quantile.  With an empirical distribution the conditional
    mean is taken over the trials at or above the quantile (at least one trial
    by construction).
    """
    values = np.asarray(year_losses, dtype=np.float64)
    if values.size == 0:
        raise ValueError("cannot compute TVaR of zero trials")
    ensure_probability(probability, "probability")
    threshold = np.quantile(values, probability)
    tail = values[values >= threshold]
    if tail.size == 0:  # pragma: no cover - cannot happen with >=
        return float(threshold)
    return float(tail.mean())


@dataclass(frozen=True)
class RiskMetrics:
    """Summary risk metrics of one year-loss distribution.

    Attributes
    ----------
    aal:
        Average annual loss.
    std:
        Standard deviation of the year losses.
    pml:
        Mapping of return period (years) to PML.
    tvar:
        Mapping of probability level to TVaR.
    max_loss:
        Largest simulated year loss.
    n_trials:
        Number of trials the metrics were computed from.
    """

    aal: float
    std: float
    pml: Mapping[float, float] = field(default_factory=dict)
    tvar: Mapping[float, float] = field(default_factory=dict)
    max_loss: float = 0.0
    n_trials: int = 0

    def pml_at(self, return_period: float) -> float:
        """PML at one of the computed return periods (KeyError otherwise)."""
        return self.pml[return_period]

    def tvar_at(self, level: float) -> float:
        """TVaR at one of the computed probability levels (KeyError otherwise)."""
        return self.tvar[level]


def compute_risk_metrics(
    year_losses: np.ndarray,
    return_periods: Sequence[float] = DEFAULT_RETURN_PERIODS,
    tvar_levels: Sequence[float] = DEFAULT_TVAR_LEVELS,
) -> RiskMetrics:
    """Compute the standard metric set from a year-loss vector."""
    values = np.asarray(year_losses, dtype=np.float64)
    if values.size == 0:
        raise ValueError("cannot compute metrics of zero trials")
    pml_values = {float(rp): pml(values, rp) for rp in return_periods}
    tvar_values = {float(level): tvar(values, level) for level in tvar_levels}
    return RiskMetrics(
        aal=aal(values),
        std=float(values.std(ddof=1)) if values.size > 1 else 0.0,
        pml=pml_values,
        tvar=tvar_values,
        max_loss=float(values.max()),
        n_trials=int(values.size),
    )


def compute_risk_metrics_from_blocks(
    blocks,
    return_periods: Sequence[float] = DEFAULT_RETURN_PERIODS,
    tvar_levels: Sequence[float] = DEFAULT_TVAR_LEVELS,
) -> RiskMetrics:
    """The standard metric set from per-shard year-loss blocks.

    ``blocks`` is any iterable of 1-D arrays, typically
    :meth:`~repro.core.results.ResultAccumulator.layer_blocks` or
    :meth:`~repro.core.results.ResultAccumulator.portfolio_blocks` of a
    sharded run.  Every metric here is a function of the *set* of per-trial
    year losses (quantiles sort them anyway), so the result is identical to
    :func:`compute_risk_metrics` over the monolithic vector regardless of
    how the trials were sharded.  The blocks are concatenated once — for the
    order-insensitive subset (AAL, max) without the concatenation, keep a
    running :class:`~repro.core.results.MetricState` instead.
    """
    return compute_risk_metrics(_concatenate_blocks(blocks), return_periods, tvar_levels)


def layer_metrics(ylt: YearLossTable,
                  return_periods: Sequence[float] = DEFAULT_RETURN_PERIODS,
                  tvar_levels: Sequence[float] = DEFAULT_TVAR_LEVELS,
                  ) -> dict[str, RiskMetrics]:
    """Per-layer metrics for every layer of a YLT."""
    return {
        name: compute_risk_metrics(losses, return_periods, tvar_levels)
        for name, losses in ylt.iter_layers()
    }


def portfolio_ep_curve(ylt: YearLossTable, max_points: int | None = None) -> EPCurve:
    """AEP curve of the whole portfolio (sum of layers per trial)."""
    return aep_curve(ylt.portfolio_losses(), max_points)
