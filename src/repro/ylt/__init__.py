"""Year Loss Table (YLT) and portfolio risk metrics.

The YLT is the output of the aggregate analysis: one loss value per trial per
layer.  "From a YLT, a reinsurer can derive important portfolio risk metrics
such as the Probable Maximum Loss (PML) and the Tail Value at Risk (TVAR)
which are used for both internal risk management and reporting to regulators
and rating agencies" (Section I).

* :mod:`repro.ylt.table` — the :class:`YearLossTable` container,
* :mod:`repro.ylt.ep_curve` — exceedance-probability curves (AEP and OEP),
* :mod:`repro.ylt.metrics` — PML, TVaR, AAL and related summary metrics,
* :mod:`repro.ylt.reporting` — formatted risk reports.
"""

from repro.ylt.ep_curve import (
    EPCurve,
    aep_curve,
    aep_curve_from_blocks,
    oep_curve,
    oep_curve_from_blocks,
)
from repro.ylt.io import load_ylt, save_ylt
from repro.ylt.metrics import (
    RiskMetrics,
    aal,
    compute_risk_metrics,
    compute_risk_metrics_from_blocks,
    pml,
    tvar,
)
from repro.ylt.reporting import format_metrics_report, format_ep_table
from repro.ylt.table import YearLossTable

__all__ = [
    "YearLossTable",
    "save_ylt",
    "load_ylt",
    "EPCurve",
    "aep_curve",
    "aep_curve_from_blocks",
    "oep_curve",
    "oep_curve_from_blocks",
    "compute_risk_metrics_from_blocks",
    "aal",
    "pml",
    "tvar",
    "RiskMetrics",
    "compute_risk_metrics",
    "format_metrics_report",
    "format_ep_table",
]
