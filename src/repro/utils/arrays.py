"""NumPy array helpers used by the vectorized engine backends.

The Year Event Table is a *ragged* structure — each trial has its own number
of events — stored flat as ``event_ids`` plus a ``trial_offsets`` array (the
classic CSR-style layout the paper describes as "a vector consisting of all
``E_{i,k}``" plus "a vector ... indicating trial boundaries").  The helpers in
this module perform per-trial (per-segment) reductions over such flattened
arrays without Python-level loops, which is what makes the vectorized backend
competitive with compiled code.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = [
    "as_float_array",
    "as_int_array",
    "validate_offsets",
    "segment_lengths",
    "segment_sum",
    "segment_max",
    "segment_sum_2d",
    "segment_max_2d",
    "cumulative_within_segments",
    "segment_ids_from_offsets",
]


def as_float_array(values: Sequence[float] | np.ndarray, name: str = "values") -> np.ndarray:
    """Return ``values`` as a contiguous 1-D float64 array (copying if needed)."""
    arr = np.ascontiguousarray(values, dtype=np.float64)
    if arr.ndim != 1:
        raise ValueError(f"{name} must be one-dimensional, got shape {arr.shape}")
    return arr


def as_int_array(values: Sequence[int] | np.ndarray, name: str = "values") -> np.ndarray:
    """Return ``values`` as a contiguous 1-D int64 array (copying if needed)."""
    arr = np.ascontiguousarray(values)
    if arr.ndim != 1:
        raise ValueError(f"{name} must be one-dimensional, got shape {arr.shape}")
    if arr.dtype.kind not in "iu":
        if arr.dtype.kind == "f" and arr.size and not np.all(np.mod(arr, 1) == 0):
            raise ValueError(f"{name} must contain integers")
        arr = arr.astype(np.int64)
    else:
        arr = arr.astype(np.int64, copy=False)
    return arr


def validate_offsets(offsets: np.ndarray, total: int, name: str = "offsets") -> np.ndarray:
    """Validate a CSR-style offsets array.

    Requirements: 1-D, length >= 1, first element 0, last element ``total``,
    monotonically non-decreasing.
    """
    arr = as_int_array(offsets, name)
    if arr.size < 1:
        raise ValueError(f"{name} must have at least one element")
    if arr[0] != 0:
        raise ValueError(f"{name}[0] must be 0, got {arr[0]}")
    if arr[-1] != total:
        raise ValueError(f"{name}[-1] must equal {total}, got {arr[-1]}")
    if arr.size > 1 and np.any(np.diff(arr) < 0):
        raise ValueError(f"{name} must be non-decreasing")
    return arr


def segment_lengths(offsets: np.ndarray) -> np.ndarray:
    """Lengths of each segment given CSR-style offsets (length ``n_segments``)."""
    offsets = as_int_array(offsets, "offsets")
    if offsets.size < 1:
        raise ValueError("offsets must have at least one element")
    return np.diff(offsets)


def segment_ids_from_offsets(offsets: np.ndarray) -> np.ndarray:
    """Expand CSR offsets to a per-element segment-id array.

    Example: offsets ``[0, 2, 5]`` -> ``[0, 0, 1, 1, 1]``.
    """
    lengths = segment_lengths(offsets)
    return np.repeat(np.arange(lengths.size, dtype=np.int64), lengths)


def segment_sum(values: np.ndarray, offsets: np.ndarray) -> np.ndarray:
    """Sum of ``values`` within each segment defined by CSR offsets.

    Empty segments produce 0.  Implemented with ``np.add.reduceat`` restricted
    to the non-empty segments (``reduceat`` mishandles empty ones — it returns
    the *next* element instead of the identity).  The reduction is **segment
    local**: each segment's sum is accumulated left to right over that
    segment's values only, so the result for a segment never depends on which
    other segments share the array.  That locality is what makes trial-sharded
    execution exact — a trial's year loss is bit-identical whether its shard
    holds one trial or a million (a cumulative-sum-difference implementation
    would leak prefix rounding across segment boundaries).
    """
    values = np.asarray(values, dtype=np.float64)
    offsets = validate_offsets(np.asarray(offsets), values.shape[0])
    n_seg = offsets.size - 1
    result = np.zeros(n_seg, dtype=np.float64)
    if values.size == 0 or n_seg == 0:
        return result
    non_empty = np.diff(offsets) > 0
    if not np.any(non_empty):
        return result
    starts = offsets[:-1][non_empty]
    result[non_empty] = np.add.reduceat(values, starts)
    return result


def segment_max(values: np.ndarray, offsets: np.ndarray, initial: float = 0.0) -> np.ndarray:
    """Maximum of ``values`` within each segment; ``initial`` for empty segments.

    The occurrence-exceedance-probability (OEP) curve needs the largest single
    occurrence loss per trial, hence ``initial=0`` (a trial with no events has
    zero maximum occurrence loss).
    """
    values = np.asarray(values, dtype=np.float64)
    offsets = validate_offsets(np.asarray(offsets), values.shape[0])
    n_seg = offsets.size - 1
    result = np.full(n_seg, float(initial), dtype=np.float64)
    if values.size == 0 or n_seg == 0:
        return result
    lengths = np.diff(offsets)
    non_empty = lengths > 0
    if not np.any(non_empty):
        return result
    # reduceat is safe when restricted to non-empty segments.
    starts = offsets[:-1][non_empty]
    maxima = np.maximum.reduceat(values, starts)
    result[non_empty] = np.maximum(maxima, float(initial))
    return result


def segment_sum_2d(values: np.ndarray, offsets: np.ndarray) -> np.ndarray:
    """Row-wise segment sums of an ``(n_rows, n)`` matrix.

    The fused multi-layer kernel reduces every layer's per-event losses to
    per-trial totals in one call; each row is treated exactly like
    :func:`segment_sum` treats its 1-D input (empty segments produce 0, and
    the reduction is segment local — see there for why that matters to
    trial-sharded execution).  Returns an ``(n_rows, n_segments)`` matrix.
    """
    matrix = np.asarray(values, dtype=np.float64)
    if matrix.ndim != 2:
        raise ValueError(f"values must be 2-D (n_rows, n), got shape {matrix.shape}")
    offsets = validate_offsets(np.asarray(offsets), matrix.shape[1])
    n_seg = offsets.size - 1
    result = np.zeros((matrix.shape[0], n_seg), dtype=np.float64)
    if matrix.shape[1] == 0 or n_seg == 0:
        return result
    non_empty = np.diff(offsets) > 0
    if not np.any(non_empty):
        return result
    starts = offsets[:-1][non_empty]
    result[:, non_empty] = np.add.reduceat(matrix, starts, axis=1)
    return result


def segment_max_2d(
    values: np.ndarray, offsets: np.ndarray, initial: float = 0.0
) -> np.ndarray:
    """Row-wise segment maxima of an ``(n_rows, n)`` matrix.

    The 2-D counterpart of :func:`segment_max`: empty segments yield
    ``initial`` in every row.  Returns an ``(n_rows, n_segments)`` matrix.
    """
    matrix = np.asarray(values, dtype=np.float64)
    if matrix.ndim != 2:
        raise ValueError(f"values must be 2-D (n_rows, n), got shape {matrix.shape}")
    offsets = validate_offsets(np.asarray(offsets), matrix.shape[1])
    n_seg = offsets.size - 1
    result = np.full((matrix.shape[0], n_seg), float(initial), dtype=np.float64)
    if matrix.shape[1] == 0 or n_seg == 0:
        return result
    lengths = np.diff(offsets)
    non_empty = lengths > 0
    if not np.any(non_empty):
        return result
    starts = offsets[:-1][non_empty]
    maxima = np.maximum.reduceat(matrix, starts, axis=1)
    result[:, non_empty] = np.maximum(maxima, float(initial))
    return result


def cumulative_within_segments(values: np.ndarray, offsets: np.ndarray) -> np.ndarray:
    """Cumulative sum of ``values`` restarting at every segment boundary.

    This is the vectorized form of the paper's line 13
    (``lox_d = sum_{i<=d} lox_i`` within a trial): a global cumulative sum from
    which the cumulative total at each segment start is subtracted.
    """
    values = np.asarray(values, dtype=np.float64)
    offsets = validate_offsets(np.asarray(offsets), values.shape[0])
    if values.size == 0:
        return np.zeros(0, dtype=np.float64)
    csum = np.cumsum(values)
    seg_ids = segment_ids_from_offsets(offsets)
    seg_start_totals = np.concatenate(([0.0], csum))[offsets[:-1]]
    return csum - seg_start_totals[seg_ids]
