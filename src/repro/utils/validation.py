"""Argument validation helpers with consistent error messages.

Input validation failures in a risk engine must be loud and early: a silently
clipped retention or a negative limit corrupts every downstream PML/TVaR
number.  These helpers normalise the error messages across the library.
"""

from __future__ import annotations

import math
from typing import Any

__all__ = [
    "ensure_positive",
    "ensure_non_negative",
    "ensure_probability",
    "ensure_in_range",
    "ensure_finite",
]


def _check_number(value: Any, name: str) -> float:
    """Coerce ``value`` to float, rejecting non-numeric input."""
    if isinstance(value, bool):
        raise TypeError(f"{name} must be a number, got bool")
    if isinstance(value, (str, bytes)):
        raise TypeError(f"{name} must be a number, got {type(value).__name__}")
    try:
        result = float(value)
    except (TypeError, ValueError) as exc:
        raise TypeError(f"{name} must be a number, got {type(value).__name__}") from exc
    return result


def ensure_finite(value: Any, name: str = "value") -> float:
    """Require ``value`` to be a finite number and return it as float."""
    result = _check_number(value, name)
    if math.isnan(result) or math.isinf(result):
        raise ValueError(f"{name} must be finite, got {result}")
    return result


def ensure_positive(value: Any, name: str = "value", allow_inf: bool = False) -> float:
    """Require ``value`` to be strictly positive and return it as float.

    ``allow_inf=True`` accepts ``+inf``, which is the conventional encoding of
    an "unlimited" layer limit.
    """
    result = _check_number(value, name)
    if math.isnan(result):
        raise ValueError(f"{name} must not be NaN")
    if math.isinf(result) and not allow_inf:
        raise ValueError(f"{name} must be finite, got {result}")
    if result <= 0:
        raise ValueError(f"{name} must be positive, got {result}")
    return result


def ensure_non_negative(value: Any, name: str = "value", allow_inf: bool = False) -> float:
    """Require ``value`` to be >= 0 and return it as float."""
    result = _check_number(value, name)
    if math.isnan(result):
        raise ValueError(f"{name} must not be NaN")
    if math.isinf(result) and not allow_inf:
        raise ValueError(f"{name} must be finite, got {result}")
    if result < 0:
        raise ValueError(f"{name} must be non-negative, got {result}")
    return result


def ensure_probability(value: Any, name: str = "value") -> float:
    """Require ``value`` to lie in the closed interval [0, 1]."""
    result = ensure_finite(value, name)
    if not 0.0 <= result <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {result}")
    return result


def ensure_in_range(
    value: Any,
    low: float,
    high: float,
    name: str = "value",
    inclusive: bool = True,
) -> float:
    """Require ``value`` to lie within [low, high] (or (low, high) if exclusive)."""
    result = ensure_finite(value, name)
    if inclusive:
        if not low <= result <= high:
            raise ValueError(f"{name} must be in [{low}, {high}], got {result}")
    else:
        if not low < result < high:
            raise ValueError(f"{name} must be in ({low}, {high}), got {result}")
    return result
