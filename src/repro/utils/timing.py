"""Wall-clock timing helpers.

The paper reports two kinds of timing results: end-to-end execution times
(Figures 2–6a) and a phase breakdown of where time goes inside the engine
(Figure 6b: event fetch, ELT lookup, financial terms, layer terms).  The
classes here provide both:

* :class:`Timer` — a simple context-manager stopwatch,
* :class:`PhaseTimer` — accumulates named phase durations over many calls,
* :class:`TimingBreakdown` — an immutable summary with percentage shares,
  which the Figure 6b benchmark prints directly.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, Mapping

__all__ = ["Timer", "PhaseTimer", "TimingBreakdown"]


class Timer:
    """Context-manager stopwatch based on :func:`time.perf_counter`.

    Examples
    --------
    >>> with Timer() as t:
    ...     _ = sum(range(1000))
    >>> t.elapsed > 0
    True
    """

    def __init__(self) -> None:
        self._start: float | None = None
        self._elapsed: float = 0.0
        self._running = False

    def start(self) -> "Timer":
        """Start (or restart) the timer."""
        self._start = time.perf_counter()
        self._running = True
        return self

    def stop(self) -> float:
        """Stop the timer and return the elapsed time in seconds."""
        if not self._running or self._start is None:
            raise RuntimeError("Timer.stop() called before start()")
        self._elapsed += time.perf_counter() - self._start
        self._running = False
        return self._elapsed

    @property
    def elapsed(self) -> float:
        """Elapsed seconds (includes the running segment if still running)."""
        if self._running and self._start is not None:
            return self._elapsed + (time.perf_counter() - self._start)
        return self._elapsed

    def reset(self) -> None:
        """Reset the accumulated time to zero."""
        self._start = None
        self._elapsed = 0.0
        self._running = False

    def __enter__(self) -> "Timer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()


@dataclass(frozen=True)
class TimingBreakdown:
    """Immutable summary of per-phase durations.

    Attributes
    ----------
    seconds:
        Mapping of phase name to accumulated seconds.
    """

    seconds: Mapping[str, float] = field(default_factory=dict)

    @property
    def total(self) -> float:
        """Total seconds across all phases."""
        return float(sum(self.seconds.values()))

    def fraction(self, phase: str) -> float:
        """Fraction of total time spent in ``phase`` (0 when total is zero)."""
        total = self.total
        if total <= 0.0:
            return 0.0
        return float(self.seconds.get(phase, 0.0)) / total

    def percentages(self) -> Dict[str, float]:
        """Percentage share per phase, summing to ~100 for non-empty data."""
        return {name: 100.0 * self.fraction(name) for name in self.seconds}

    def merged_with(self, other: "TimingBreakdown") -> "TimingBreakdown":
        """Return a new breakdown with the two sets of durations summed."""
        merged: Dict[str, float] = dict(self.seconds)
        for name, value in other.seconds.items():
            merged[name] = merged.get(name, 0.0) + float(value)
        return TimingBreakdown(merged)

    def as_dict(self) -> Dict[str, float]:
        """Plain ``dict`` copy of the per-phase seconds."""
        return dict(self.seconds)

    def format_table(self) -> str:
        """Human-readable fixed-width table (used by the Fig. 6b bench)."""
        lines = [f"{'phase':<24}{'seconds':>12}{'share %':>10}"]
        pct = self.percentages()
        for name, secs in self.seconds.items():
            lines.append(f"{name:<24}{secs:>12.6f}{pct[name]:>10.2f}")
        lines.append(f"{'total':<24}{self.total:>12.6f}{100.0 if self.total else 0.0:>10.2f}")
        return "\n".join(lines)


class PhaseTimer:
    """Accumulates wall-clock time per named phase.

    The engine backends wrap each of the four algorithm phases in
    ``with timer.phase("elt_lookup"): ...`` blocks.  Timing can be disabled
    (``enabled=False``) to remove the (small) overhead from benchmark runs
    that only need end-to-end times.

    Examples
    --------
    >>> timer = PhaseTimer()
    >>> with timer.phase("lookup"):
    ...     _ = [i * i for i in range(100)]
    >>> timer.breakdown().seconds["lookup"] > 0
    True
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = bool(enabled)
        self._seconds: Dict[str, float] = {}
        self._counts: Dict[str, int] = {}

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Context manager measuring one occurrence of phase ``name``."""
        if not self.enabled:
            yield
            return
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            self._seconds[name] = self._seconds.get(name, 0.0) + elapsed
            self._counts[name] = self._counts.get(name, 0) + 1

    def add(self, name: str, seconds: float, count: int = 1) -> None:
        """Manually add ``seconds`` to phase ``name`` (used by device models)."""
        if seconds < 0:
            raise ValueError(f"seconds must be non-negative, got {seconds}")
        self._seconds[name] = self._seconds.get(name, 0.0) + float(seconds)
        self._counts[name] = self._counts.get(name, 0) + int(count)

    def seconds(self, name: str) -> float:
        """Accumulated seconds for phase ``name`` (0.0 if never timed)."""
        return self._seconds.get(name, 0.0)

    def count(self, name: str) -> int:
        """Number of times phase ``name`` was entered."""
        return self._counts.get(name, 0)

    def breakdown(self) -> TimingBreakdown:
        """Snapshot of the accumulated per-phase times."""
        return TimingBreakdown(dict(self._seconds))

    def reset(self) -> None:
        """Clear all accumulated times and counts."""
        self._seconds.clear()
        self._counts.clear()

    def merge(self, other: "PhaseTimer") -> None:
        """Fold another timer's accumulations into this one (for workers)."""
        for name, secs in other._seconds.items():
            self._seconds[name] = self._seconds.get(name, 0.0) + secs
        for name, cnt in other._counts.items():
            self._counts[name] = self._counts.get(name, 0) + cnt
