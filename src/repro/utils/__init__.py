"""Shared utilities for the aggregate risk analysis library.

This subpackage contains small, dependency-free helpers used across every
other subpackage:

* :mod:`repro.utils.rng` — deterministic random number generator management,
* :mod:`repro.utils.timing` — wall-clock timers and phase accumulators,
* :mod:`repro.utils.validation` — argument validation helpers with consistent
  error messages,
* :mod:`repro.utils.arrays` — NumPy array helpers (segment reductions,
  flattened ragged-array views) used by the vectorized engine backends.
"""

from repro.utils.arrays import (
    as_float_array,
    as_int_array,
    cumulative_within_segments,
    segment_lengths,
    segment_max,
    segment_sum,
    validate_offsets,
)
from repro.utils.rng import SeedSequenceFactory, derive_rng, spawn_rngs
from repro.utils.timing import PhaseTimer, Timer, TimingBreakdown
from repro.utils.validation import (
    ensure_in_range,
    ensure_non_negative,
    ensure_positive,
    ensure_probability,
)

__all__ = [
    "SeedSequenceFactory",
    "derive_rng",
    "spawn_rngs",
    "Timer",
    "PhaseTimer",
    "TimingBreakdown",
    "ensure_positive",
    "ensure_non_negative",
    "ensure_probability",
    "ensure_in_range",
    "as_float_array",
    "as_int_array",
    "segment_sum",
    "segment_max",
    "segment_lengths",
    "cumulative_within_segments",
    "validate_offsets",
]
