"""Deterministic random-number-generator management.

Every stochastic component in the library (catalog generation, exposure
generation, the Year Event Table simulator, workload presets) accepts either
an integer seed or a :class:`numpy.random.Generator`.  Centralising the
seed-handling logic here guarantees that

* the same seed always produces the same workload, independent of the order
  in which subsystems consume randomness, and
* parallel workers can be handed statistically independent streams derived
  from a single user-facing seed (via :func:`spawn_rngs`), which is the
  standard ``SeedSequence.spawn`` approach recommended for HPC Monte-Carlo
  codes.
"""

from __future__ import annotations

from typing import Iterable, Sequence, Union

import numpy as np

RNGLike = Union[int, np.random.Generator, np.random.SeedSequence, None]

__all__ = ["RNGLike", "derive_rng", "spawn_rngs", "SeedSequenceFactory"]


def derive_rng(seed: RNGLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` from any seed-like input.

    Parameters
    ----------
    seed:
        ``None`` (non-deterministic), an ``int`` seed, an existing
        ``Generator`` (returned unchanged so callers can share a stream), or a
        ``SeedSequence``.

    Examples
    --------
    >>> rng = derive_rng(42)
    >>> rng2 = derive_rng(42)
    >>> float(rng.random()) == float(rng2.random())
    True
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, np.random.SeedSequence):
        return np.random.default_rng(seed)
    if seed is None:
        return np.random.default_rng()
    if isinstance(seed, (int, np.integer)):
        if seed < 0:
            raise ValueError(f"seed must be non-negative, got {seed}")
        return np.random.default_rng(int(seed))
    raise TypeError(
        "seed must be None, an int, a numpy Generator or a SeedSequence; "
        f"got {type(seed).__name__}"
    )


def spawn_rngs(seed: RNGLike, count: int, start: int = 0) -> list[np.random.Generator]:
    """Spawn ``count`` statistically independent generators from one seed.

    Used to hand each parallel worker (process or simulated GPU block) — and
    each replication of a secondary-uncertainty analysis — its own stream so
    that results do not depend on the number of workers or on how the
    replications are blocked.

    The children are *prefix-stable*: child ``i`` depends only on the root
    seed and on ``i``, never on ``count`` or ``start``.  Hence
    ``spawn_rngs(s, 8)[3]`` and ``spawn_rngs(s, 2, start=3)[0]`` draw
    identical streams, which is what lets the streamed replication path
    sample block by block and still reproduce the all-at-once draws exactly.

    Parameters
    ----------
    seed:
        Root seed.  If a ``Generator`` is passed its underlying bit generator
        seed sequence is *not* recoverable, so a fresh ``SeedSequence`` is
        created from its output — still deterministic for a seeded generator
        (but note the generator is advanced, so prefix stability across
        *calls* only holds for int and ``SeedSequence`` seeds).
    count:
        Number of independent child generators to create.
    start:
        Index of the first child stream to return; the result covers children
        ``start .. start + count - 1`` of the root seed.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    if start < 0:
        raise ValueError(f"start must be non-negative, got {start}")
    if isinstance(seed, np.random.SeedSequence):
        root = seed
    elif isinstance(seed, np.random.Generator):
        root = np.random.SeedSequence(int(seed.integers(0, 2**63 - 1)))
    elif seed is None:
        root = np.random.SeedSequence()
    else:
        root = np.random.SeedSequence(int(seed))
    # Children are built directly from the root's entropy instead of via
    # ``root.spawn`` so that (a) a caller-owned SeedSequence's spawn counter
    # is left untouched and (b) child ``i`` never depends on how many
    # children earlier calls asked for — the prefix-stability guarantee.
    spawn_key = tuple(root.spawn_key)
    children = [
        np.random.SeedSequence(
            entropy=root.entropy,
            spawn_key=spawn_key + (start + i,),
            pool_size=root.pool_size,
        )
        for i in range(count)
    ]
    return [np.random.default_rng(child) for child in children]


class SeedSequenceFactory:
    """Deterministic factory of named random streams.

    The factory derives one child stream per *name*, so a component asking for
    ``factory.rng("yet")`` always receives the same stream regardless of how
    many other components asked before it.  This removes inter-component
    coupling of random state, which is essential for reproducible workload
    generation in tests and benchmarks.

    Examples
    --------
    >>> f1, f2 = SeedSequenceFactory(7), SeedSequenceFactory(7)
    >>> float(f1.rng("yet").random()) == float(f2.rng("yet").random())
    True
    >>> float(f1.rng("elt").random()) == float(f1.rng("yet").random())
    False
    """

    def __init__(self, seed: RNGLike = None) -> None:
        if isinstance(seed, np.random.SeedSequence):
            self._root = seed
        elif isinstance(seed, np.random.Generator):
            self._root = np.random.SeedSequence(int(seed.integers(0, 2**63 - 1)))
        elif seed is None:
            self._root = np.random.SeedSequence()
        elif isinstance(seed, (int, np.integer)):
            self._root = np.random.SeedSequence(int(seed))
        else:
            raise TypeError(f"unsupported seed type: {type(seed).__name__}")
        self._entropy = self._root.entropy

    @property
    def entropy(self):
        """Root entropy of the factory (for logging / provenance)."""
        return self._entropy

    @staticmethod
    def _name_key(name: str) -> int:
        """Map a stream name to a stable 64-bit integer key."""
        # FNV-1a over the UTF-8 bytes of the name: stable across processes
        # and Python versions (unlike the built-in ``hash``).
        h = 0xCBF29CE484222325
        for byte in name.encode("utf-8"):
            h ^= byte
            h = (h * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
        return h

    def seed_sequence(self, name: str) -> np.random.SeedSequence:
        """Return the child :class:`~numpy.random.SeedSequence` for ``name``."""
        key = self._name_key(name)
        return np.random.SeedSequence(
            entropy=self._entropy, spawn_key=(key & 0xFFFFFFFF, key >> 32)
        )

    def rng(self, name: str) -> np.random.Generator:
        """Return a fresh generator for the named stream."""
        return np.random.default_rng(self.seed_sequence(name))

    def rngs(self, names: Iterable[str]) -> dict[str, np.random.Generator]:
        """Return a dictionary of generators, one per name."""
        return {name: self.rng(name) for name in names}

    def spawn_for_workers(self, name: str, count: int) -> Sequence[np.random.Generator]:
        """Spawn ``count`` independent generators under the named stream."""
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        return [np.random.default_rng(s) for s in self.seed_sequence(name).spawn(count)]

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"SeedSequenceFactory(entropy={self._entropy!r})"
