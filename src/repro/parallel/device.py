"""Simulated many-core (GPU) device model.

No CUDA hardware is available to this reproduction, so the GPU experiments
(Figures 4, 5a, 5b and the GPU bars of Figure 6a) are reproduced with an
explicit *device model*: the aggregate-analysis kernels are executed
functionally with NumPy (so the numerical results are exact), while their
execution time on a Tesla-C2075-class device is *estimated* with the
analytical cost model in this module.

The model is deliberately simple and fully documented; its purpose is to
capture the three effects the paper's GPU experiments demonstrate:

1. **Occupancy / latency hiding** — global-memory traffic is served at a rate
   per streaming multiprocessor (SM) equal to
   ``min(bandwidth_limit, active_warps * mlp / global_latency)``; too few
   resident threads leave the memory latency exposed (Fig. 4: "at least 128
   threads per block are required").
2. **Shared-memory staging (chunking)** — the optimised kernel stages blocks
   of ``chunk_size`` events through shared memory, which (a) removes the
   basic kernel's global-memory round-trips for the intermediate loss values
   and (b) increases the memory-level parallelism of the ELT gathers.  Each
   chunk iteration carries a fixed overhead, so very small chunks are slow
   (Fig. 5a, chunk 1 → 4 improvement).
3. **Shared-memory capacity** — a block requires
   ``threads_per_block * chunk_size * bytes_per_event_slot`` bytes of shared
   memory; demand beyond the per-SM capacity spills the intermediate accesses
   back to global memory (Fig. 5a, degradation beyond chunk size ~12).

All constants are exposed on :class:`GPUSpec` so that tests and ablation
benchmarks can perturb them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.utils.validation import ensure_positive

__all__ = [
    "GPUSpec",
    "KernelConfig",
    "WorkloadShape",
    "KernelEstimate",
    "KernelCostModel",
    "SimulatedGPU",
    "multi_gpu_estimate",
]


@dataclass(frozen=True)
class GPUSpec:
    """Hardware parameters of the simulated device (defaults: Tesla C2075)."""

    name: str = "Simulated Tesla C2075"
    n_sms: int = 14
    cores_per_sm: int = 32
    warp_size: int = 32
    clock_hz: float = 1.15e9
    global_bandwidth_bytes: float = 144.0e9
    #: Fraction of the peak bandwidth achievable with the engine's scattered
    #: access pattern (random gathers never reach the theoretical peak).
    bandwidth_efficiency: float = 0.60
    global_latency_cycles: float = 400.0
    shared_mem_per_sm_bytes: int = 48 * 1024
    constant_mem_bytes: int = 64 * 1024
    max_threads_per_sm: int = 1536
    max_blocks_per_sm: int = 8
    max_threads_per_block: int = 1024
    #: Bytes transferred per *random* global access (cache-line granularity).
    random_access_bytes: int = 128
    #: Bytes transferred per fully coalesced per-thread access.
    coalesced_access_bytes: int = 8
    #: Shared-memory accesses served per cycle per SM (no bank conflicts).
    shared_accesses_per_cycle: float = 32.0
    #: ALU operations per cycle per SM.
    alu_ops_per_cycle: float = 32.0
    #: Memory-level parallelism (outstanding global loads per warp) of the
    #: basic kernel; the optimised kernel reaches ``min(chunk_size, mlp_max)``.
    mlp_basic: float = 0.75
    mlp_max: float = 4.0
    #: Shared-memory bytes needed per staged event per thread (event id,
    #: intermediate loss values and padding).
    bytes_per_event_slot: int = 64
    #: Fixed overhead cycles per chunk iteration per thread (loop control,
    #: synchronisation, staging global -> shared).
    chunk_overhead_cycles: float = 300.0
    #: Kernel launch overhead in seconds.
    launch_overhead_s: float = 5.0e-5
    #: Global accesses per event for the basic kernel's intermediate values
    #: (lx_d / lox_d kept in global memory and re-read/re-written per step).
    basic_intermediate_accesses_per_event: float = 10.0
    #: Shared accesses per event for the optimised kernel's intermediates.
    optimised_intermediate_accesses_per_event: float = 10.0

    def __post_init__(self) -> None:
        for attr in ("n_sms", "cores_per_sm", "warp_size", "max_threads_per_sm",
                     "max_blocks_per_sm", "max_threads_per_block",
                     "shared_mem_per_sm_bytes"):
            if getattr(self, attr) <= 0:
                raise ValueError(f"{attr} must be positive")
        ensure_positive(self.clock_hz, "clock_hz")
        ensure_positive(self.global_bandwidth_bytes, "global_bandwidth_bytes")
        ensure_positive(self.global_latency_cycles, "global_latency_cycles")

    @property
    def bandwidth_bytes_per_cycle_per_sm(self) -> float:
        """Usable global-memory bytes per clock cycle per SM."""
        return (
            self.global_bandwidth_bytes * self.bandwidth_efficiency / self.clock_hz / self.n_sms
        )


@dataclass(frozen=True)
class KernelConfig:
    """Launch configuration of an aggregate-analysis kernel."""

    threads_per_block: int = 256
    chunk_size: int = 4
    optimised: bool = True

    def __post_init__(self) -> None:
        if self.threads_per_block <= 0:
            raise ValueError("threads_per_block must be positive")
        if self.chunk_size <= 0:
            raise ValueError("chunk_size must be positive")


@dataclass(frozen=True)
class WorkloadShape:
    """Shape of an aggregate-analysis workload (one layer unless stated)."""

    n_trials: int
    events_per_trial: float
    n_elts: int
    n_layers: int = 1

    def __post_init__(self) -> None:
        if self.n_trials <= 0 or self.n_elts <= 0 or self.n_layers <= 0:
            raise ValueError("n_trials, n_elts and n_layers must be positive")
        if self.events_per_trial <= 0:
            raise ValueError("events_per_trial must be positive")

    @property
    def total_events(self) -> float:
        """Event occurrences across all trials (one layer)."""
        return self.n_trials * self.events_per_trial

    @property
    def total_lookups(self) -> float:
        """ELT lookups across all trials and layers (the paper's 15-billion figure)."""
        return self.total_events * self.n_elts * self.n_layers


@dataclass(frozen=True)
class KernelEstimate:
    """Output of the cost model for one kernel launch."""

    seconds: float
    cycles_per_sm: float
    occupancy: float
    active_threads_per_sm: int
    blocks_per_sm: int
    n_blocks: int
    spill_fraction: float
    shared_bytes_per_block: int
    breakdown: Dict[str, float] = field(default_factory=dict)

    def summary(self) -> str:
        """One-line human-readable summary."""
        return (
            f"{self.seconds:.3f}s occupancy={self.occupancy:.2f} "
            f"blocks/SM={self.blocks_per_sm} spill={self.spill_fraction:.2f}"
        )


class KernelCostModel:
    """Analytical execution-time model of the aggregate-analysis kernels."""

    def __init__(self, spec: GPUSpec | None = None) -> None:
        self.spec = spec if spec is not None else GPUSpec()

    # ------------------------------------------------------------------ #
    # Residency / occupancy
    # ------------------------------------------------------------------ #
    def blocks_per_sm(self, config: KernelConfig) -> int:
        """Resident blocks per SM (limited by block slots and thread slots).

        The simulated device handles shared-memory over-subscription by
        *spilling* to global memory rather than by reducing residency, so the
        shared-memory demand does not limit the resident block count (see
        :meth:`spill_fraction`).
        """
        spec = self.spec
        by_threads = max(1, spec.max_threads_per_sm // config.threads_per_block)
        return int(min(spec.max_blocks_per_sm, by_threads))

    def active_threads_per_sm(self, config: KernelConfig) -> int:
        """Threads resident per SM for the given launch configuration."""
        return int(min(self.spec.max_threads_per_sm,
                       self.blocks_per_sm(config) * config.threads_per_block))

    def occupancy(self, config: KernelConfig) -> float:
        """Resident threads as a fraction of the SM's thread capacity."""
        return self.active_threads_per_sm(config) / self.spec.max_threads_per_sm

    def shared_bytes_per_block(self, config: KernelConfig) -> int:
        """Shared-memory demand of one block of the optimised kernel."""
        if not config.optimised:
            return 0
        return int(config.threads_per_block * config.chunk_size * self.spec.bytes_per_event_slot)

    def spill_fraction(self, config: KernelConfig) -> float:
        """Fraction of intermediate accesses spilling to global memory.

        Zero while one block's staging buffers fit into the SM's shared
        memory; beyond capacity the overflow fraction of accesses is served
        from global memory (Fig. 5a's rapid degradation past chunk ~12).
        """
        if not config.optimised:
            return 1.0  # basic kernel keeps intermediates in global memory
        demand = self.shared_bytes_per_block(config)
        capacity = self.spec.shared_mem_per_sm_bytes
        if demand <= capacity:
            return 0.0
        return 1.0 - capacity / demand

    # ------------------------------------------------------------------ #
    # Memory-system rates
    # ------------------------------------------------------------------ #
    def _global_rate_per_cycle(self, config: KernelConfig, bytes_per_access: float) -> float:
        """Global accesses served per cycle per SM (latency- or bandwidth-limited)."""
        spec = self.spec
        warps = self.active_threads_per_sm(config) / spec.warp_size
        if config.optimised:
            mlp = min(float(config.chunk_size), spec.mlp_max)
        else:
            mlp = spec.mlp_basic
        latency_limited = warps * mlp / spec.global_latency_cycles
        bandwidth_limited = spec.bandwidth_bytes_per_cycle_per_sm / bytes_per_access
        return max(1e-12, min(latency_limited, bandwidth_limited))

    # ------------------------------------------------------------------ #
    # Estimation
    # ------------------------------------------------------------------ #
    def estimate(self, shape: WorkloadShape, config: KernelConfig) -> KernelEstimate:
        """Estimate the kernel execution time for a workload.

        The workload is assumed to be distributed one thread per trial over
        ``ceil(n_trials / threads_per_block)`` blocks, scheduled over the
        device's SMs; the per-SM cycle count is computed from the per-SM share
        of the total work under throughput limits for global memory, shared
        memory and the ALUs, taking the maximum (perfect overlap assumption)
        plus the chunk-loop overhead.
        """
        spec = self.spec
        if config.threads_per_block > spec.max_threads_per_block:
            raise ValueError(
                f"threads_per_block {config.threads_per_block} exceeds the device "
                f"maximum {spec.max_threads_per_block}"
            )
        n_blocks = -(-shape.n_trials // config.threads_per_block)  # ceil

        # Per-SM share of the workload (trials are spread evenly over SMs).
        trials_per_sm = shape.n_trials / spec.n_sms
        events_per_sm = trials_per_sm * shape.events_per_trial
        layers = shape.n_layers

        spill = self.spill_fraction(config)

        # --- global-memory traffic ------------------------------------- #
        # Random ELT lookups: one per (event, ELT, layer).
        lookup_accesses = events_per_sm * shape.n_elts * layers
        # Event-id fetches: coalesced, one per (event, layer).
        fetch_accesses = events_per_sm * layers
        # Intermediate losses: global for the basic kernel, global only for
        # the spilled fraction of the optimised kernel.
        if config.optimised:
            intermediate_global = (
                spill * spec.optimised_intermediate_accesses_per_event * events_per_sm * layers
            )
            intermediate_shared = (
                (1.0 - spill) * spec.optimised_intermediate_accesses_per_event
                * events_per_sm * layers
            )
        else:
            intermediate_global = (
                spec.basic_intermediate_accesses_per_event * events_per_sm * layers
            )
            intermediate_shared = 0.0

        random_rate = self._global_rate_per_cycle(config, spec.random_access_bytes)
        coalesced_rate = self._global_rate_per_cycle(config, spec.coalesced_access_bytes)
        cycles_lookups = lookup_accesses / random_rate
        cycles_fetch = fetch_accesses / coalesced_rate
        cycles_intermediate_global = intermediate_global / random_rate
        cycles_global = cycles_lookups + cycles_fetch + cycles_intermediate_global

        # --- shared memory and ALU -------------------------------------- #
        cycles_shared = intermediate_shared / spec.shared_accesses_per_cycle
        alu_ops = (
            events_per_sm * shape.n_elts * layers * 4.0  # financial terms
            + events_per_sm * layers * 8.0               # occurrence + aggregate terms
        )
        cycles_alu = alu_ops / spec.alu_ops_per_cycle

        # --- chunk-loop overhead ----------------------------------------- #
        if config.optimised:
            chunks_per_trial = -(-shape.events_per_trial // config.chunk_size)
        else:
            chunks_per_trial = shape.events_per_trial  # event-at-a-time loop
        # The overhead is paid per chunk iteration per *warp of trials*
        # resident on the SM, serialised over the trial waves.
        waves = trials_per_sm / max(1.0, self.active_threads_per_sm(config))
        cycles_overhead = (
            chunks_per_trial * spec.chunk_overhead_cycles * max(1.0, waves) * layers
        )

        cycles_total = max(cycles_global, cycles_shared + cycles_alu) + cycles_overhead
        seconds = cycles_total / spec.clock_hz + spec.launch_overhead_s * layers

        breakdown = {
            "elt_lookup": cycles_lookups / spec.clock_hz,
            "event_fetch": cycles_fetch / spec.clock_hz,
            "intermediate_global": cycles_intermediate_global / spec.clock_hz,
            "shared": cycles_shared / spec.clock_hz,
            "alu": cycles_alu / spec.clock_hz,
            "chunk_overhead": cycles_overhead / spec.clock_hz,
        }
        return KernelEstimate(
            seconds=float(seconds),
            cycles_per_sm=float(cycles_total),
            occupancy=self.occupancy(config),
            active_threads_per_sm=self.active_threads_per_sm(config),
            blocks_per_sm=self.blocks_per_sm(config),
            n_blocks=int(n_blocks),
            spill_fraction=float(spill),
            shared_bytes_per_block=self.shared_bytes_per_block(config),
            breakdown=breakdown,
        )


def multi_gpu_estimate(
    model: "KernelCostModel",
    shape: WorkloadShape,
    config: KernelConfig,
    n_gpus: int,
    sync_overhead_s: float = 0.05,
) -> float:
    """Projected runtime when the trial range is split across ``n_gpus`` devices.

    Section IV: "If a complete portfolio analysis is required on a 1M trial
    basis then a multi-GPU hardware platform would likely be required."  The
    trial dimension is embarrassingly parallel, so the projection simply
    splits the trials evenly, runs the per-device estimate on the slice, and
    adds a fixed host-side synchronisation/merge overhead per device.
    """
    if n_gpus <= 0:
        raise ValueError(f"n_gpus must be positive, got {n_gpus}")
    trials_per_gpu = -(-shape.n_trials // n_gpus)  # ceil
    slice_shape = WorkloadShape(
        n_trials=trials_per_gpu,
        events_per_trial=shape.events_per_trial,
        n_elts=shape.n_elts,
        n_layers=shape.n_layers,
    )
    return model.estimate(slice_shape, config).seconds + sync_overhead_s * n_gpus


class SimulatedGPU:
    """A simulated GPU: a spec plus its cost model.

    The functional execution of the kernels (producing actual Year Loss
    Tables) is done by :mod:`repro.core.gpu_sim`; this class answers the
    "how long would this launch take on the device" question.
    """

    def __init__(self, spec: GPUSpec | None = None) -> None:
        self.spec = spec if spec is not None else GPUSpec()
        self.cost_model = KernelCostModel(self.spec)

    def estimate(self, shape: WorkloadShape, config: KernelConfig) -> KernelEstimate:
        """Estimate the execution time of one kernel launch."""
        return self.cost_model.estimate(shape, config)

    def max_threads_for_chunk(self, chunk_size: int) -> int:
        """Largest threads-per-block whose staging fits in shared memory.

        Rounded down to a multiple of the warp size; the paper notes that
        "with a chunk size of 4 the maximum number of threads that can be
        supported is 192", which this reproduces with the default
        ``bytes_per_event_slot`` of 64.
        """
        if chunk_size <= 0:
            raise ValueError("chunk_size must be positive")
        limit = self.spec.shared_mem_per_sm_bytes // (chunk_size * self.spec.bytes_per_event_slot)
        limit = (limit // self.spec.warp_size) * self.spec.warp_size
        return int(min(max(limit, self.spec.warp_size), self.spec.max_threads_per_block))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SimulatedGPU(spec={self.spec.name!r})"
