"""Trial-range partitioning.

The unit of parallel work in the aggregate analysis is the trial.  These
helpers split the trial index range ``[0, n_trials)`` into work items:

* :func:`block_partition` — ``k`` contiguous, nearly-equal blocks (the static
  OpenMP-style decomposition used with one block per core);
* :func:`chunk_partition` — fixed-size contiguous chunks (the decomposition
  used for dynamic scheduling / oversubscription, where many more chunks than
  workers are queued);
* :func:`cyclic_partition` — round-robin assignment of individual trials (kept
  for completeness; poor locality makes it a baseline, not a recommendation).

The plan layer (:mod:`repro.core.plan`) generalises the work item from a
trial range to a :class:`Tile`: a (trial block x stacked-row block) rectangle
of the workload, produced by :func:`tile_partition` and exposed as
:meth:`~repro.core.plan.ExecutionPlan.tiles`.  The simulated-GPU backend
schedules plans as ``threads_per_block x 1`` tiles (one per simulated CUDA
block); the whole-space default (one full tile) describes the vectorized
pass.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List

import numpy as np

__all__ = [
    "TrialRange",
    "Tile",
    "block_partition",
    "chunk_partition",
    "cyclic_partition",
    "shard_partition",
    "tile_partition",
]


@dataclass(frozen=True)
class TrialRange:
    """A contiguous range of trial indices ``[start, stop)`` owned by one work item."""

    start: int
    stop: int

    def __post_init__(self) -> None:
        if self.start < 0 or self.stop < self.start:
            raise ValueError(f"invalid trial range [{self.start}, {self.stop})")

    @property
    def size(self) -> int:
        """Number of trials in the range."""
        return self.stop - self.start

    def __iter__(self) -> Iterator[int]:
        return iter(range(self.start, self.stop))

    def __len__(self) -> int:
        return self.size


@dataclass(frozen=True)
class Tile:
    """One rectangle of a plan's (trial x stacked-row) iteration space.

    ``trials`` delimits the contiguous trial block the tile covers and
    ``rows`` the contiguous block of stacked term-netted loss rows.  A tile is
    the unit of work a plan scheduler hands to one executor slot (a worker
    process, a chunk iteration, a simulated CUDA block).
    """

    trials: TrialRange
    rows: TrialRange

    @property
    def n_trials(self) -> int:
        """Number of trials the tile covers."""
        return self.trials.size

    @property
    def n_rows(self) -> int:
        """Number of stacked rows the tile covers."""
        return self.rows.size


def tile_partition(
    n_trials: int,
    n_rows: int,
    trial_block: int | None = None,
    row_block: int | None = None,
) -> List[Tile]:
    """Split an ``n_trials x n_rows`` iteration space into contiguous tiles.

    ``trial_block`` / ``row_block`` bound the tile edge along each axis;
    ``None`` leaves that axis unsplit (one block spanning the full range).
    Tiles are emitted row-block-major: all trial blocks of the first row
    block, then the next row block, matching how the streaming sweep yields
    whole row blocks (program groups) in order.
    """
    trial_ranges = (
        [TrialRange(0, n_trials)]
        if trial_block is None
        else chunk_partition(n_trials, trial_block)
    )
    row_ranges = (
        [TrialRange(0, n_rows)]
        if row_block is None
        else chunk_partition(n_rows, row_block)
    )
    return [Tile(t, r) for r in row_ranges for t in trial_ranges]


def block_partition(n_trials: int, n_blocks: int) -> List[TrialRange]:
    """Split ``n_trials`` into at most ``n_blocks`` contiguous, nearly equal blocks.

    The first ``n_trials % n_blocks`` blocks receive one extra trial.  Every
    returned range is non-empty: with ``n_blocks > n_trials`` only
    ``n_trials`` single-trial blocks are produced, and zero trials produce an
    empty list.  An empty ``TrialRange`` is never emitted — a zero-size work
    item would make a worker pay its scheduling overhead for nothing and
    forces every consumer (executors, accumulators) to special-case it.
    """
    if n_trials < 0:
        raise ValueError(f"n_trials must be non-negative, got {n_trials}")
    if n_blocks <= 0:
        raise ValueError(f"n_blocks must be positive, got {n_blocks}")
    n_blocks = min(n_blocks, n_trials)
    if n_blocks == 0:
        return []
    base = n_trials // n_blocks
    remainder = n_trials % n_blocks
    ranges: List[TrialRange] = []
    start = 0
    for block in range(n_blocks):
        size = base + (1 if block < remainder else 0)
        ranges.append(TrialRange(start, start + size))
        start += size
    return ranges


def chunk_partition(n_trials: int, chunk_size: int) -> List[TrialRange]:
    """Split ``n_trials`` into contiguous chunks of at most ``chunk_size`` trials.

    Zero trials produce an empty list; like :func:`block_partition`, an empty
    ``TrialRange`` is never emitted.
    """
    if n_trials < 0:
        raise ValueError(f"n_trials must be non-negative, got {n_trials}")
    if chunk_size <= 0:
        raise ValueError(f"chunk_size must be positive, got {chunk_size}")
    ranges = []
    for start in range(0, n_trials, chunk_size):
        ranges.append(TrialRange(start, min(start + chunk_size, n_trials)))
    return ranges


def shard_partition(n_trials: int, n_shards: int) -> List[TrialRange]:
    """The trial-shard decomposition of the paper's map/reduce shape.

    Splits ``[0, n_trials)`` into at most ``n_shards`` contiguous, nearly
    equal, non-empty shards — the unit over which
    :class:`~repro.core.results.PartialResult` blocks are computed and merged.
    This is :func:`block_partition` under its sharding name: keeping a
    dedicated entry point lets the plan layer state its contract ("shards are
    disjoint, ordered, and cover the trial range") in one place.
    """
    return block_partition(n_trials, n_shards)


def cyclic_partition(n_trials: int, n_workers: int) -> List[np.ndarray]:
    """Round-robin assignment of trial indices to ``n_workers`` workers.

    Returns one index array per worker (worker ``w`` gets trials
    ``w, w + n_workers, w + 2*n_workers, ...``).
    """
    if n_trials < 0:
        raise ValueError(f"n_trials must be non-negative, got {n_trials}")
    if n_workers <= 0:
        raise ValueError(f"n_workers must be positive, got {n_workers}")
    indices = np.arange(n_trials, dtype=np.int64)
    return [indices[w::n_workers] for w in range(n_workers)]
