"""Scheduling policies for trial-block execution.

Figure 3 of the paper explores two knobs of the multi-core run:

* the number of cores (workers), Fig. 3a, and
* the number of threads per core (oversubscription), Fig. 3b, where running
  many more threads than cores recovers a moderate amount of time (135 s down
  to 125 s at 256 threads/core) by overlapping memory stalls.

In the process-pool analogue, "threads per core" maps to the number of work
items handed to each worker: a *static* schedule builds exactly one block per
worker, while a *dynamic* schedule over-decomposes the trial range into
``oversubscription x n_workers`` smaller chunks that workers pull as they
finish, improving load balance and overlapping scheduling gaps.

The module also contains :func:`memory_bound_speedup_model`, a small roofline
model that explains the limited CPU speedups the paper observes (1.5x on two
cores, 2.2x on four, 2.6x on eight): once the shared memory bandwidth is
saturated, extra cores add no throughput.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List

from repro.parallel.partitioner import TrialRange, block_partition, chunk_partition
from repro.utils.validation import ensure_in_range, ensure_positive

__all__ = ["SchedulingPolicy", "Schedule", "make_schedule", "memory_bound_speedup_model"]


class SchedulingPolicy(enum.Enum):
    """How trial blocks are assigned to workers."""

    STATIC = "static"
    DYNAMIC = "dynamic"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class Schedule:
    """A concrete schedule: the work items and the worker count to run them on.

    Attributes
    ----------
    policy:
        The scheduling policy that produced the schedule.
    n_workers:
        Number of worker processes ("cores").
    oversubscription:
        Work items per worker ("threads per core"); 1 for static schedules.
    blocks:
        The trial ranges, in submission order.
    """

    policy: SchedulingPolicy
    n_workers: int
    oversubscription: int
    blocks: tuple[TrialRange, ...]

    @property
    def n_blocks(self) -> int:
        """Total number of work items."""
        return len(self.blocks)

    @property
    def max_block_size(self) -> int:
        """Largest work item (trials)."""
        return max((block.size for block in self.blocks), default=0)

    def total_trials(self) -> int:
        """Total number of trials covered by the schedule."""
        return sum(block.size for block in self.blocks)


def make_schedule(
    n_trials: int,
    n_workers: int,
    policy: SchedulingPolicy = SchedulingPolicy.STATIC,
    oversubscription: int = 1,
) -> Schedule:
    """Build a schedule for ``n_trials`` over ``n_workers`` workers.

    Parameters
    ----------
    n_trials:
        Number of trials to analyse.
    n_workers:
        Number of worker processes.
    policy:
        ``STATIC`` — one contiguous block per worker; ``DYNAMIC`` — the range
        is over-decomposed into ``oversubscription * n_workers`` chunks pulled
        from a shared queue.
    oversubscription:
        Work items per worker for the dynamic policy (the paper's "threads per
        core"); ignored (forced to 1) for the static policy.
    """
    if n_trials < 0:
        raise ValueError(f"n_trials must be non-negative, got {n_trials}")
    ensure_positive(n_workers, "n_workers")
    ensure_positive(oversubscription, "oversubscription")

    if policy is SchedulingPolicy.STATIC:
        blocks: List[TrialRange] = block_partition(n_trials, int(n_workers))
        oversub = 1
    elif policy is SchedulingPolicy.DYNAMIC:
        n_items = int(n_workers) * int(oversubscription)
        chunk = max(1, -(-n_trials // n_items))  # ceil division
        blocks = chunk_partition(n_trials, chunk)
        oversub = int(oversubscription)
    else:  # pragma: no cover - exhaustive enum
        raise ValueError(f"unknown scheduling policy {policy}")

    return Schedule(
        policy=policy,
        n_workers=int(n_workers),
        oversubscription=oversub,
        blocks=tuple(blocks),
    )


def memory_bound_speedup_model(
    n_cores: int,
    memory_bound_fraction: float = 0.78,
    single_core_bandwidth_share: float = 0.45,
) -> float:
    """Roofline-style speedup model for the memory-bound aggregate analysis.

    The model splits single-core runtime into a compute part (scales with
    cores) and a memory part (scales only until the shared bandwidth is
    saturated).  With the paper's measured 78 % of time in ELT memory lookups
    (Fig. 6b) and a single core consuming roughly 45 % of the socket's usable
    bandwidth, the model yields speedups close to the reported 1.5x / 2.2x /
    2.6x for 2 / 4 / 8 cores.

    Parameters
    ----------
    n_cores:
        Number of cores.
    memory_bound_fraction:
        Fraction of single-core runtime that is memory-access bound.
    single_core_bandwidth_share:
        Fraction of the saturated memory bandwidth one core can consume.

    Returns
    -------
    float
        Predicted speedup relative to one core.
    """
    ensure_positive(n_cores, "n_cores")
    ensure_in_range(memory_bound_fraction, 0.0, 1.0, "memory_bound_fraction")
    ensure_in_range(single_core_bandwidth_share, 0.0, 1.0, "single_core_bandwidth_share")
    compute_fraction = 1.0 - memory_bound_fraction
    # Memory time shrinks until n_cores * share >= 1 (bandwidth saturated).
    if single_core_bandwidth_share <= 0:
        memory_scale = 1.0
    else:
        memory_scale = 1.0 / min(n_cores, 1.0 / single_core_bandwidth_share)
    time = compute_fraction / n_cores + memory_bound_fraction * memory_scale
    return 1.0 / time
