"""Shared-memory NumPy arrays for multi-process execution.

OpenMP threads share one address space: the YET and the layers' direct access
tables are loaded once and every thread reads them.  Python worker *processes*
do not share memory by default — naively passing the arrays to a process pool
would pickle and copy gigabytes per worker.  :class:`SharedArray` wraps
:class:`multiprocessing.shared_memory.SharedMemory` so that

* the parent allocates the block once and copies the data in,
* each worker attaches to the block by name and builds a zero-copy NumPy view,
* the parent unlinks the block when the analysis is finished.

:class:`SharedWorkspace` manages a named collection of such arrays (the YET's
event ids and offsets plus the fused loss stack) and can reconstruct the
views on the worker side from a compact, picklable descriptor.  This is the
transport the multicore plan scheduler uses: the
:class:`~repro.core.plan.ExecutionPlan`'s stack and YET columns are published
once and every worker attaches zero-copy instead of unpickling
``n_layers x catalog_size`` doubles per run.

Lifecycle guarantees
--------------------

Shared segments are system-global resources: a segment whose owner forgets
``unlink()`` outlives the process in ``/dev/shm``.  Three layers of defence
make leaks impossible in practice:

* every owner is tracked in a module-level registry and an ``atexit`` hook
  closes and unlinks any segment still open at interpreter shutdown (so an
  exception that skips a ``finally`` block cannot leak past process exit);
* :class:`SharedWorkspace` and :class:`SharedArray` are context managers, and
  the multicore scheduler wraps its workspace in ``try/finally`` — a worker
  dying mid-block (raising, or killed outright) still ends with the parent
  unlinking every segment;
* worker-side attachments bypass Python's per-process resource tracker
  (``track=False`` on 3.13+, a register shim on older versions), so a dying
  worker can neither prematurely unlink a segment other workers are reading
  nor spam ``KeyError`` tracebacks from double-unregistration.
"""

from __future__ import annotations

import atexit
import threading
import weakref
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Dict, Mapping, Tuple

import numpy as np

__all__ = ["SharedArray", "SharedArrayDescriptor", "SharedWorkspace"]

# Owner-side registry backing the atexit guard.  WeakSet: a SharedArray that
# was closed and garbage-collected must not be resurrected at shutdown.
_LIVE_OWNERS: "weakref.WeakSet[SharedArray]" = weakref.WeakSet()
_REGISTRY_LOCK = threading.Lock()


@atexit.register
def _unlink_leaked_segments() -> None:  # pragma: no cover - exercised via subprocess
    """Last-resort guard: unlink any owned segment still open at exit."""
    with _REGISTRY_LOCK:
        owners = list(_LIVE_OWNERS)
    for owner in owners:
        try:
            owner.close()
        except Exception:
            pass


def _attach_untracked(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing segment without registering a tracker claim.

    Python < 3.13 registers *every* attachment with the attaching process's
    resource tracker (bpo-38119), so a worker exiting would try to unlink a
    segment the parent still owns.  3.13+ exposes ``track=False``; on older
    versions the registration call is shimmed out for the duration of the
    attach.  The owner side keeps normal tracking — the segment always has
    exactly one tracked claimant, the process responsible for unlinking it.
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)  # type: ignore[call-arg]
    except TypeError:  # Python < 3.13: no track parameter
        pass
    from multiprocessing import resource_tracker

    original_register = resource_tracker.register

    def _skip_shared_memory(res_name, rtype):  # pragma: no cover - trivial shim
        if rtype != "shared_memory":
            original_register(res_name, rtype)

    resource_tracker.register = _skip_shared_memory
    try:
        return shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = original_register


@dataclass(frozen=True)
class SharedArrayDescriptor:
    """Picklable description of a shared array (name, shape, dtype)."""

    shm_name: str
    shape: Tuple[int, ...]
    dtype: str


class SharedArray:
    """A NumPy array backed by a named shared-memory block."""

    def __init__(self, shm: shared_memory.SharedMemory, array: np.ndarray, owner: bool) -> None:
        self._shm = shm
        self.array = array
        self._owner = owner
        self._closed = False
        if owner:
            with _REGISTRY_LOCK:
                _LIVE_OWNERS.add(self)

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    @classmethod
    def from_array(cls, source: np.ndarray) -> "SharedArray":
        """Allocate a shared block and copy ``source`` into it (parent side)."""
        source = np.ascontiguousarray(source)
        nbytes = max(int(source.nbytes), 1)
        shm = shared_memory.SharedMemory(create=True, size=nbytes)
        view = np.ndarray(source.shape, dtype=source.dtype, buffer=shm.buf)
        view[...] = source
        return cls(shm, view, owner=True)

    @classmethod
    def attach(cls, descriptor: SharedArrayDescriptor) -> "SharedArray":
        """Attach to an existing shared block by descriptor (worker side)."""
        shm = _attach_untracked(descriptor.shm_name)
        view = np.ndarray(
            descriptor.shape, dtype=np.dtype(descriptor.dtype), buffer=shm.buf
        )
        return cls(shm, view, owner=False)

    # ------------------------------------------------------------------ #
    # Introspection / lifecycle
    # ------------------------------------------------------------------ #
    @property
    def descriptor(self) -> SharedArrayDescriptor:
        """Descriptor that a worker can use to attach to this array."""
        return SharedArrayDescriptor(
            shm_name=self._shm.name,
            shape=tuple(self.array.shape),
            dtype=self.array.dtype.str,
        )

    @property
    def nbytes(self) -> int:
        """Size of the underlying array in bytes."""
        return int(self.array.nbytes)

    def close(self) -> None:
        """Detach from the block; the owner also unlinks (frees) it."""
        if self._closed:
            return
        self._closed = True
        if self._owner:
            with _REGISTRY_LOCK:
                _LIVE_OWNERS.discard(self)
        # Drop the NumPy view before closing the mapping, otherwise the
        # exported buffer keeps the mapping alive and close() raises.
        self.array = None  # type: ignore[assignment]
        self._shm.close()
        if self._owner:
            try:
                self._shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already unlinked
                pass

    def __enter__(self) -> "SharedArray":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - best effort cleanup
        try:
            self.close()
        except Exception:
            pass


class SharedWorkspace:
    """A named collection of shared arrays plus reconstruction helpers."""

    def __init__(self) -> None:
        self._arrays: Dict[str, SharedArray] = {}

    def add(self, name: str, source: np.ndarray) -> SharedArray:
        """Copy ``source`` into shared memory under ``name`` (parent side)."""
        if name in self._arrays:
            raise KeyError(f"shared array {name!r} already exists")
        shared = SharedArray.from_array(source)
        self._arrays[name] = shared
        return shared

    def get(self, name: str) -> np.ndarray:
        """The parent-side view of the named array."""
        return self._arrays[name].array

    def descriptors(self) -> Dict[str, SharedArrayDescriptor]:
        """Picklable descriptors of every array (sent to workers)."""
        return {name: arr.descriptor for name, arr in self._arrays.items()}

    @property
    def total_bytes(self) -> int:
        """Total shared memory held by the workspace."""
        return sum(arr.nbytes for arr in self._arrays.values())

    def close(self) -> None:
        """Close and unlink every shared block."""
        for shared in self._arrays.values():
            shared.close()
        self._arrays.clear()

    def __enter__(self) -> "SharedWorkspace":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # Worker-side reconstruction
    # ------------------------------------------------------------------ #
    @staticmethod
    def attach_all(
        descriptors: Mapping[str, SharedArrayDescriptor],
    ) -> Dict[str, SharedArray]:
        """Attach to every described array (worker side).

        The caller is responsible for keeping the returned objects alive for
        as long as the views are used and for calling ``close()`` afterwards.
        """
        return {name: SharedArray.attach(desc) for name, desc in descriptors.items()}
