"""Parallel execution substrate.

The paper's parallelisation strategy is "a single thread ... per trial": the
trial loop is embarrassingly parallel and the engineering problem is feeding
the threads data efficiently (OpenMP threads over a shared address space on
the CPU, CUDA blocks with global/shared/constant memory on the GPU).  This
subpackage provides the Python equivalents:

* :mod:`repro.parallel.partitioner` — splitting the trial range into blocks
  (static block, cyclic, fixed-size chunks);
* :mod:`repro.parallel.shared_memory` — NumPy arrays backed by
  :mod:`multiprocessing.shared_memory` so that worker processes share the YET
  and the layers' dense loss matrices without copying;
* :mod:`repro.parallel.executor` — a process-pool executor mapping trial
  blocks to workers (the OpenMP analogue);
* :mod:`repro.parallel.scheduling` — static vs dynamic (oversubscribed)
  scheduling policies, mirroring the paper's threads-per-core experiments;
* :mod:`repro.parallel.device` — the :class:`SimulatedGPU` device model used
  to reproduce the GPU experiments without CUDA hardware.
"""

from repro.parallel.device import GPUSpec, KernelCostModel, KernelEstimate, SimulatedGPU
from repro.parallel.executor import ParallelConfig, TrialBlockExecutor, available_cores
from repro.parallel.partitioner import TrialRange, block_partition, chunk_partition, cyclic_partition
from repro.parallel.scheduling import Schedule, SchedulingPolicy, make_schedule, memory_bound_speedup_model
from repro.parallel.shared_memory import SharedArray, SharedWorkspace

__all__ = [
    "TrialRange",
    "block_partition",
    "cyclic_partition",
    "chunk_partition",
    "SharedArray",
    "SharedWorkspace",
    "ParallelConfig",
    "TrialBlockExecutor",
    "available_cores",
    "SchedulingPolicy",
    "Schedule",
    "make_schedule",
    "memory_bound_speedup_model",
    "GPUSpec",
    "KernelCostModel",
    "KernelEstimate",
    "SimulatedGPU",
]
