"""Process-pool execution of trial blocks (the OpenMP analogue).

The executor maps a *block function* over the work items of a
:class:`~repro.parallel.scheduling.Schedule`.  Large read-only inputs (the
YET, the layer loss matrices) are published to the workers either through
shared memory descriptors or — on fork-capable platforms — through a
module-level global installed by the pool initializer, so that the per-task
pickling cost stays constant in the size of the data.

The block function must be a picklable top-level callable taking
``(context, trial_range)`` and returning a picklable result; the engine's
multicore backend provides such a function.
"""

from __future__ import annotations

import multiprocessing as mp
import os
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, List, Sequence

from repro.parallel.scheduling import Schedule, SchedulingPolicy, make_schedule
from repro.utils.validation import ensure_positive

__all__ = ["available_cores", "ParallelConfig", "TrialBlockExecutor"]

# Module-level slot the pool initializer fills in each worker process.  Block
# functions receive its value as their ``context`` argument.
_WORKER_CONTEXT: Any = None


def available_cores() -> int:
    """Number of usable CPU cores (respecting CPU affinity when set)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux fallback
        return os.cpu_count() or 1


def _init_worker(context_factory: Callable[[], Any] | None, context: Any) -> None:
    """Pool initializer: install the worker-side context.

    If ``context_factory`` is given it is called in the worker (e.g. to attach
    shared memory); otherwise the pickled ``context`` value is used directly.
    """
    global _WORKER_CONTEXT
    _WORKER_CONTEXT = context_factory() if context_factory is not None else context


def _run_block(args: tuple[Callable[[Any, Any], Any], Any]) -> Any:
    """Top-level task wrapper executed in the worker."""
    block_fn, work_item = args
    return block_fn(_WORKER_CONTEXT, work_item)


@dataclass(frozen=True)
class ParallelConfig:
    """Configuration of a multi-process run.

    Attributes
    ----------
    n_workers:
        Number of worker processes ("cores"); defaults to the machine's core
        count.
    policy:
        Static or dynamic scheduling (see :mod:`repro.parallel.scheduling`).
    oversubscription:
        Work items per worker under dynamic scheduling (the paper's "threads
        per core").
    start_method:
        Multiprocessing start method; ``"fork"`` shares read-only data with
        workers for free on Linux, ``"spawn"`` is portable but requires the
        context to be picklable or reconstructible in the worker.
    """

    n_workers: int = field(default_factory=available_cores)
    policy: SchedulingPolicy = SchedulingPolicy.STATIC
    oversubscription: int = 1
    start_method: str = "fork"

    def __post_init__(self) -> None:
        ensure_positive(self.n_workers, "n_workers")
        ensure_positive(self.oversubscription, "oversubscription")
        if self.start_method not in ("fork", "spawn", "forkserver"):
            raise ValueError(f"unknown start method {self.start_method!r}")


class TrialBlockExecutor:
    """Maps a block function over trial blocks with a process pool.

    Parameters
    ----------
    config:
        Parallel run configuration.
    context:
        Read-only object passed to every block invocation (e.g. the workload
        arrays).  With the ``fork`` start method it is inherited by reference;
        with ``spawn`` it is pickled once per worker.
    context_factory:
        Alternative to ``context``: a picklable zero-argument callable invoked
        once per worker to build the context there (e.g. attach to shared
        memory).  Takes precedence over ``context`` when provided.
    """

    def __init__(
        self,
        config: ParallelConfig | None = None,
        context: Any = None,
        context_factory: Callable[[], Any] | None = None,
    ) -> None:
        self.config = config if config is not None else ParallelConfig()
        self._context = context
        self._context_factory = context_factory

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #
    def schedule_for(self, n_trials: int) -> Schedule:
        """The schedule this executor would use for ``n_trials`` trials."""
        return make_schedule(
            n_trials,
            self.config.n_workers,
            self.config.policy,
            self.config.oversubscription,
        )

    def run(
        self,
        block_fn: Callable[[Any, Any], Any],
        work_items: Sequence[Any] | None = None,
        n_trials: int | None = None,
    ) -> List[Any]:
        """Run ``block_fn`` over work items and return the per-item results in order.

        Either ``work_items`` (arbitrary picklable items) or ``n_trials``
        (from which a schedule of :class:`TrialRange` items is built) must be
        given.
        """
        if work_items is None:
            if n_trials is None:
                raise ValueError("either work_items or n_trials must be provided")
            work_items = list(self.schedule_for(int(n_trials)).blocks)
        items = list(work_items)
        if not items:
            return []

        # Serial fast path: avoids process start-up cost and simplifies
        # debugging/profiling; used when one worker is requested.
        if self.config.n_workers == 1:
            context = (
                self._context_factory() if self._context_factory is not None else self._context
            )
            return [block_fn(context, item) for item in items]

        ctx = mp.get_context(self.config.start_method)
        if self.config.start_method == "forkserver":
            # Preload the engine stack into the fork server so each worker
            # forks with NumPy and the kernels already imported instead of
            # paying the interpreter/import start-up per worker.  Only the
            # first call (before the server starts) has any effect.
            try:  # pragma: no cover - exercised by the multicore benchmarks
                ctx.set_forkserver_preload(["repro.core.multicore"])
            except Exception:
                pass
        chunksize = 1  # work items are already coarse-grained
        tasks: Iterable[tuple[Callable[[Any, Any], Any], Any]] = [
            (block_fn, item) for item in items
        ]
        with ctx.Pool(
            processes=self.config.n_workers,
            initializer=_init_worker,
            initargs=(self._context_factory, self._context),
        ) as pool:
            results = pool.map(_run_block, tasks, chunksize=chunksize)
        return results
