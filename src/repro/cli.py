"""Command-line interface.

Six subcommands cover the everyday operations of the library::

    are generate --preset bench --out yet.npz     # simulate & store a YET
    are run --preset bench --backend vectorized   # run an aggregate analysis
    are run --preset bench --batch 8              # batch-price 8 term variants
    are sweep --variants 32 --block-rows 16       # stream a quote sweep
    are metrics --preset bench                    # run + print PML/TVaR report
    are uncertainty --replications 64 --cv 0.6    # replication-banded metrics
    are project --trials 1000000                  # full-scale runtime projection

``run --batch N`` is the batched real-time pricing scenario: N candidate-term
variants of the preset's program are priced in *one* engine invocation (their
layers all flow through the fused multi-layer kernel together) and a quote
line is printed per variant.

``sweep`` is the streaming form of the same scenario, backed by
:class:`~repro.portfolio.sweep.PortfolioSweepService`: the variants are
grouped into row-bounded blocks, each block lowers to one ExecutionPlan
(identical ELT gathers deduplicated across variants) and quotes stream out
block by block — the many-quotes-from-one-engine-pass serving path.

``uncertainty`` wraps the preset program's ELTs with per-event loss
distributions and runs the replication-batched secondary-uncertainty engine:
all replications are sampled up front and priced as fused stack rows in one
pass over the YET, yielding percentile bands around every risk metric and a
banded quote.

The CLI operates on the synthetic workload presets; it exists so that the
examples and benchmarks have a scriptable entry point (and so that a user can
poke at the engine without writing Python).
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.core.config import BACKEND_NAMES, EngineConfig
from repro.core.engine import AggregateRiskEngine
from repro.core.projection import CPUCostModel, project_summary
from repro.financial.terms import LayerTerms
from repro.parallel.device import WorkloadShape
from repro.portfolio.pricing import price_program
from repro.portfolio.program import ReinsuranceProgram
from repro.portfolio.sweep import PortfolioSweepService
from repro.uncertainty import (
    LossDistributionFamily,
    SecondaryUncertaintyAnalysis,
    UncertainEventLossTable,
    UncertainLayer,
)
from repro.utils.timing import Timer
from repro.workloads.generator import WorkloadGenerator
from repro.workloads.presets import preset, preset_names
from repro.yet.io import save_yet
from repro.ylt.metrics import compute_risk_metrics
from repro.ylt.reporting import format_metrics_report

__all__ = ["main", "build_parser"]


def _non_negative_int(text: str) -> int:
    value = int(text)
    if value < 0:
        raise argparse.ArgumentTypeError(f"must be >= 0, got {value}")
    return value


def _positive_int(text: str) -> int:
    value = int(text)
    if value <= 0:
        raise argparse.ArgumentTypeError(f"must be > 0, got {value}")
    return value


def build_parser() -> argparse.ArgumentParser:
    """Construct the top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="are",
        description="Aggregate Risk Engine — parallel aggregate analysis of catastrophe portfolios",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    generate = subparsers.add_parser("generate", help="generate a synthetic workload's YET")
    generate.add_argument("--preset", default="bench", choices=preset_names())
    generate.add_argument("--seed", type=int, default=None, help="override the preset seed")
    generate.add_argument("--out", required=True, help="output .npz path for the YET")

    run = subparsers.add_parser("run", help="run an aggregate analysis on a preset workload")
    _add_run_arguments(run)
    run.add_argument(
        "--batch",
        type=_non_negative_int,
        default=0,
        metavar="N",
        help="batch mode: price N candidate-term variants of the preset program "
             "in one fused engine invocation and print a quote per variant "
             "(0 = normal single run)",
    )

    sweep = subparsers.add_parser(
        "sweep",
        help="stream a portfolio sweep: many term variants quoted block by block",
    )
    _add_run_arguments(sweep)
    sweep.add_argument(
        "--variants", type=_positive_int, default=8, metavar="N",
        help="number of candidate-term variants to sweep (default 8)",
    )
    sweep.add_argument(
        "--block-rows", type=_non_negative_int, default=0, metavar="R",
        help="bound one engine pass to R stacked rows "
             "(0 = the whole sweep in a single block)",
    )
    sweep.add_argument(
        "--no-dedupe", action="store_true",
        help="disable sharing of identical ELT gathers across variants",
    )

    metrics = subparsers.add_parser("metrics", help="run an analysis and print the risk report")
    _add_run_arguments(metrics)
    metrics.add_argument("--return-periods", default="10,25,50,100,250",
                         help="comma-separated PML return periods (years)")

    uncertainty = subparsers.add_parser(
        "uncertainty",
        help="replication-banded secondary-uncertainty analysis and quote",
    )
    _add_run_arguments(uncertainty)
    uncertainty.add_argument(
        "--replications", type=_positive_int, default=64, metavar="R",
        help="number of sampled replications (default 64)",
    )
    uncertainty.add_argument(
        "--cv", type=float, default=0.6,
        help="coefficient of variation wrapped around every ELT loss (default 0.6)",
    )
    uncertainty.add_argument(
        "--family", default="gamma", choices=[f.value for f in LossDistributionFamily],
        help="conditional loss distribution family",
    )
    uncertainty.add_argument(
        "--method", default="batched", choices=("batched", "replay"),
        help="batched = one fused stacked pass over the YET (default); "
             "replay = one engine invocation per replication (conformance oracle)",
    )
    uncertainty.add_argument(
        "--block", type=_non_negative_int, default=0, metavar="B",
        help="stream the batched path in blocks of B replications "
             "(0 = all replications in one fused pass)",
    )
    uncertainty.add_argument("--return-periods", default="100,250",
                             help="comma-separated PML return periods (years)")

    project = subparsers.add_parser(
        "project", help="project full-scale runtimes with the analytical cost models"
    )
    project.add_argument("--trials", type=int, default=1_000_000)
    project.add_argument("--events-per-trial", type=int, default=1000)
    project.add_argument("--elts-per-layer", type=int, default=15)
    project.add_argument("--layers", type=int, default=1)
    project.add_argument("--cores", type=int, default=8)

    return parser


def _add_run_arguments(sub: argparse.ArgumentParser) -> None:
    sub.add_argument("--preset", default="bench", choices=preset_names())
    sub.add_argument("--seed", type=int, default=None, help="override the preset seed")
    sub.add_argument("--backend", default="vectorized", choices=BACKEND_NAMES)
    sub.add_argument("--workers", type=int, default=1, help="workers for the multicore backend")
    sub.add_argument("--threads-per-block", type=int, default=256)
    sub.add_argument("--chunk-size", type=int, default=4)
    sub.add_argument("--phases", action="store_true", help="record the phase breakdown")


def _build_workload(args: argparse.Namespace):
    spec = preset(args.preset)
    if args.seed is not None:
        spec = spec.scaled(seed=args.seed)
    return WorkloadGenerator(spec).generate()


def _build_config(args: argparse.Namespace) -> EngineConfig:
    return EngineConfig(
        backend=args.backend,
        n_workers=args.workers,
        threads_per_block=args.threads_per_block,
        gpu_chunk_size=args.chunk_size,
        record_phases=args.phases,
    )


def _command_generate(args: argparse.Namespace) -> int:
    workload = _build_workload(args)
    path = save_yet(workload.yet, args.out)
    print(f"workload : {workload.summary()}")
    print(f"YET saved: {path}")
    return 0


def _candidate_variants(program: ReinsuranceProgram, n: int) -> list[ReinsuranceProgram]:
    """N candidate-term variants of a program for the batch-pricing scenario.

    Variant ``i`` scales every layer's occurrence and aggregate retentions by
    ``1 + 0.25 * i`` (variant 0 is the program as written).  The layers'
    cached dense loss matrices are shared across variants — only the layer
    terms differ — so the batch run prices all variants from one stacked
    gather without rebuilding any matrix.
    """
    # with_terms only shares a matrix that already exists, so build each
    # layer's dense matrix (and its term-netted combined row) before cloning.
    for layer in program.layers:
        layer.loss_matrix().combined_net_losses()
    variants = []
    for i in range(n):
        scale = 1.0 + 0.25 * i
        layers = [
            layer.with_terms(
                LayerTerms(
                    occurrence_retention=layer.terms.occurrence_retention * scale,
                    occurrence_limit=layer.terms.occurrence_limit,
                    aggregate_retention=layer.terms.aggregate_retention * scale,
                    aggregate_limit=layer.terms.aggregate_limit,
                )
            )
            for layer in program.layers
        ]
        variants.append(
            ReinsuranceProgram(layers, name=f"{program.name}@retx{scale:.2f}")
        )
    return variants


def _command_run(args: argparse.Namespace) -> int:
    workload = _build_workload(args)
    engine = AggregateRiskEngine(_build_config(args))
    if args.batch > 0:
        variants = _candidate_variants(workload.program, args.batch)
        wall = Timer().start()
        results = engine.run_many(variants, workload.yet)
        quotes = [
            price_program(variant, result.ylt)
            for variant, result in zip(variants, results)
        ]
        seconds = wall.stop()
        print(f"workload : {workload.summary()}")
        print(f"batch    : {len(variants)} variants x {workload.program.n_layers} layers "
              f"priced in one {engine.backend_name} invocation ({seconds:.4f}s)")
        for quote in quotes:
            print(f"  {quote.summary()}")
        if results[0].phase_breakdown is not None:
            print(results[0].phase_breakdown.format_table())
        return 0
    result = engine.run(workload.program, workload.yet)
    print(f"workload : {workload.summary()}")
    print(f"result   : {result.summary()}")
    if result.phase_breakdown is not None:
        print(result.phase_breakdown.format_table())
    return 0


def _command_sweep(args: argparse.Namespace) -> int:
    workload = _build_workload(args)
    variants = _candidate_variants(workload.program, args.variants)
    service = PortfolioSweepService(
        AggregateRiskEngine(_build_config(args))
    )
    print(f"workload : {workload.summary()}")
    print(f"sweep    : {len(variants)} variants x {workload.program.n_layers} layers "
          f"on {args.backend}"
          + (f", <= {args.block_rows} rows/block" if args.block_rows else ", one block"))
    wall = Timer().start()
    n_quotes = 0
    for block in service.sweep(
        variants,
        workload.yet,
        max_rows_per_block=args.block_rows,
        dedupe=not args.no_dedupe,
    ):
        print(f"  {block.summary()}")
        for quote in block.quotes:
            print(f"    {quote.summary()}")
            n_quotes += 1
    seconds = wall.stop()
    print(f"total    : {n_quotes} quotes in {seconds:.4f}s")
    return 0


def _command_metrics(args: argparse.Namespace) -> int:
    workload = _build_workload(args)
    engine = AggregateRiskEngine(_build_config(args))
    result = engine.run(workload.program, workload.yet)
    return_periods = tuple(float(x) for x in args.return_periods.split(",") if x)
    metrics = compute_risk_metrics(result.ylt.portfolio_losses(), return_periods=return_periods)
    print(f"workload : {workload.summary()}")
    print(f"result   : {result.summary()}")
    print()
    print(format_metrics_report(metrics, title=f"Portfolio risk ({args.preset})"))
    return 0


def _command_uncertainty(args: argparse.Namespace) -> int:
    if args.method == "batched" and args.backend not in ("vectorized", "chunked", "multicore"):
        print(
            f"error: backend {args.backend!r} has no stacked execution path; "
            "use --backend vectorized/chunked/multicore or --method replay",
            file=sys.stderr,
        )
        return 2
    workload = _build_workload(args)
    family = LossDistributionFamily(args.family)
    uncertain_layers = [
        UncertainLayer(
            elts=[
                UncertainEventLossTable.from_elt(elt, cv=args.cv, family=family)
                for elt in layer.elts
            ],
            terms=layer.terms,
            name=layer.name,
        )
        for layer in workload.program.layers
    ]
    config = _build_config(args).replace(
        record_max_occurrence=False, replication_block=args.block
    )
    analysis = SecondaryUncertaintyAnalysis(uncertain_layers, config=config)
    return_periods = tuple(float(x) for x in args.return_periods.split(",") if x)
    # Fall back to the preset seed so the default invocation is reproducible.
    seed = args.seed if args.seed is not None else preset(args.preset).seed

    wall = Timer().start()
    summaries = analysis.run_batched(
        workload.yet,
        args.replications,
        rng=seed,
        return_periods=return_periods,
        method=args.method,
    )
    seconds = wall.stop()

    print(f"workload : {workload.summary()}")
    block_note = f", block={args.block}" if args.block else ""
    print(f"analysis : {args.replications} replications (cv={args.cv:g}, {family.value}) "
          f"via {args.method} on {config.backend}{block_note} in {seconds:.4f}s")
    print()
    header = f"{'metric':<12}{'mean':>16}{'std':>14}{'p5':>16}{'p95':>16}"
    print(header)
    print("-" * len(header))
    for name, summary in summaries.items():
        print(f"{name:<12}{summary.mean:>16,.0f}{summary.std:>14,.0f}"
              f"{summary.low:>16,.0f}{summary.high:>16,.0f}")

    program = analysis.expected_program()
    engine = AggregateRiskEngine(config)
    quote = price_program(program, engine.run(program, workload.yet).ylt,
                          uncertainty=summaries)
    print()
    print(f"quote    : {quote.summary()}")
    return 0


def _command_project(args: argparse.Namespace) -> int:
    shape = WorkloadShape(
        n_trials=args.trials,
        events_per_trial=float(args.events_per_trial),
        n_elts=args.elts_per_layer,
        n_layers=args.layers,
    )
    summary = project_summary(shape, n_cores=args.cores, cpu_model=CPUCostModel())
    print(f"projected runtimes for {args.trials:,} trials x {args.events_per_trial} events "
          f"x {args.elts_per_layer} ELTs x {args.layers} layer(s):")
    for name, seconds in summary.items():
        print(f"  {name:<16}: {seconds:10.2f} s")
    return 0


_COMMANDS = {
    "generate": _command_generate,
    "run": _command_run,
    "sweep": _command_sweep,
    "metrics": _command_metrics,
    "uncertainty": _command_uncertainty,
    "project": _command_project,
}


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point (returns a process exit code)."""
    parser = build_parser()
    args = parser.parse_args(argv)
    handler = _COMMANDS[args.command]
    return handler(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
