"""Command-line interface.

The subcommands cover the everyday operations of the library::

    are generate --preset bench --out yet.npz     # simulate & store a YET
    are run --preset bench --backend vectorized   # run an aggregate analysis
    are run --preset bench --batch 8              # batch-price 8 term variants
    are sweep --variants 32 --block-rows 16       # stream a quote sweep
    are metrics --preset bench                    # run + print PML/TVaR report
    are uncertainty --replications 64 --cv 0.6    # replication-banded metrics
    are request --json '{"kind": "run", ...}'     # answer one JSON request
    are serve                                     # warm NDJSON request loop
    are backends --json                           # backend availability probes
    are project --trials 1000000                  # full-scale runtime projection

Every pricing command is a thin shell over the
:class:`~repro.service.service.RiskService` request path: the command
builds a declarative :class:`~repro.service.request.AnalysisRequest`,
submits it, and formats the uniform
:class:`~repro.service.response.AnalysisResponse` — the same path a JSON
request travels through ``are request``.  ``are serve`` keeps one *warm*
service across many requests: the engine, the content-addressed plan cache
and any multicore shared-memory workspaces persist between lines, so the
second identical request skips lowering and stack building entirely::

    printf '%s\n%s\n' \
        '{"kind": "run", "program": "bench"}' \
        '{"kind": "run", "program": "bench"}' | are serve
    # line 1: "cache": {"hit": false, ...}   (cold: lower + stack build)
    # line 2: "cache": {"hit": true,  ...}   (warm: straight to the kernels)

``run --batch N`` is the batched real-time pricing scenario: N candidate-term
variants of the preset's program are priced in *one* engine invocation (their
layers all flow through the fused multi-layer kernel together) and a quote
line is printed per variant.  ``sweep`` is the streaming form of the same
scenario (row-bounded blocks, identical ELT gathers deduplicated across
variants).  ``uncertainty`` runs the replication-batched
secondary-uncertainty engine and prints percentile bands around every risk
metric plus a banded quote.

The CLI operates on the synthetic workload presets; it exists so that the
examples and benchmarks have a scriptable entry point (and so that a user can
poke at the engine without writing Python).
"""

from __future__ import annotations

import argparse
import contextlib
import json
import os
import sys
from typing import Sequence

from repro.core.config import BACKEND_NAMES, DTYPE_NAMES, EngineConfig
from repro.core.projection import CPUCostModel, project_summary
from repro.parallel.device import WorkloadShape
from repro.service import AnalysisRequest, RequestValidationError, RiskService
from repro.service.response import error_payload
from repro.uncertainty import LossDistributionFamily
from repro.workloads.generator import WorkloadGenerator
from repro.workloads.presets import preset, preset_names
from repro.yet.io import save_yet
from repro.ylt.metrics import compute_risk_metrics
from repro.ylt.reporting import format_metrics_report

__all__ = ["main", "build_parser"]


def _non_negative_int(text: str) -> int:
    value = int(text)
    if value < 0:
        raise argparse.ArgumentTypeError(f"must be >= 0, got {value}")
    return value


def _positive_int(text: str) -> int:
    value = int(text)
    if value <= 0:
        raise argparse.ArgumentTypeError(f"must be > 0, got {value}")
    return value


def _listen_address(text: str) -> tuple[str, int]:
    host, sep, port = text.rpartition(":")
    if not sep or not host:
        raise argparse.ArgumentTypeError(
            f"expected HOST:PORT, got {text!r} (use :0 for an ephemeral port)"
        )
    try:
        return host, int(port)
    except ValueError:
        raise argparse.ArgumentTypeError(f"port must be an integer, got {port!r}")


def build_parser() -> argparse.ArgumentParser:
    """Construct the top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="are",
        description="Aggregate Risk Engine — parallel aggregate analysis of catastrophe portfolios",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    generate = subparsers.add_parser("generate", help="generate a synthetic workload's YET")
    generate.add_argument("--preset", default="bench", choices=preset_names())
    generate.add_argument("--seed", type=int, default=None, help="override the preset seed")
    generate.add_argument("--out", required=True, help="output .npz path for the YET")

    run = subparsers.add_parser("run", help="run an aggregate analysis on a preset workload")
    _add_run_arguments(run)
    run.add_argument(
        "--batch",
        type=_non_negative_int,
        default=0,
        metavar="N",
        help="batch mode: price N candidate-term variants of the preset program "
             "in one fused engine invocation and print a quote per variant "
             "(0 = normal single run)",
    )
    run.add_argument(
        "--fleet", metavar="ADDRS", default=None,
        help="price on a distributed worker fleet: comma-separated HOST:PORT "
             "addresses of `are worker` processes (the merge is bit-identical "
             "to a local run)",
    )

    sweep = subparsers.add_parser(
        "sweep",
        help="stream a portfolio sweep: many term variants quoted block by block",
    )
    _add_run_arguments(sweep)
    sweep.add_argument(
        "--variants", type=_positive_int, default=8, metavar="N",
        help="number of candidate-term variants to sweep (default 8)",
    )
    sweep.add_argument(
        "--block-rows", type=_non_negative_int, default=0, metavar="R",
        help="bound one engine pass to R stacked rows "
             "(0 = the whole sweep in a single block)",
    )
    sweep.add_argument(
        "--no-dedupe", action="store_true",
        help="disable sharing of identical ELT gathers across variants",
    )

    metrics = subparsers.add_parser("metrics", help="run an analysis and print the risk report")
    _add_run_arguments(metrics)
    metrics.add_argument("--return-periods", default="10,25,50,100,250",
                         help="comma-separated PML return periods (years)")

    uncertainty = subparsers.add_parser(
        "uncertainty",
        help="replication-banded secondary-uncertainty analysis and quote",
    )
    _add_run_arguments(uncertainty)
    uncertainty.add_argument(
        "--replications", type=_positive_int, default=64, metavar="R",
        help="number of sampled replications (default 64)",
    )
    uncertainty.add_argument(
        "--cv", type=float, default=0.6,
        help="coefficient of variation wrapped around every ELT loss (default 0.6)",
    )
    uncertainty.add_argument(
        "--family", default="gamma", choices=[f.value for f in LossDistributionFamily],
        help="conditional loss distribution family",
    )
    uncertainty.add_argument(
        "--method", default="batched", choices=("batched", "replay"),
        help="batched = one fused stacked pass over the YET (default); "
             "replay = one engine invocation per replication (conformance oracle)",
    )
    uncertainty.add_argument(
        "--block", type=_non_negative_int, default=0, metavar="B",
        help="stream the batched path in blocks of B replications "
             "(0 = all replications in one fused pass)",
    )
    uncertainty.add_argument("--return-periods", default="100,250",
                             help="comma-separated PML return periods (years)")

    request = subparsers.add_parser(
        "request",
        help="answer one declarative JSON analysis request through the RiskService",
    )
    _add_service_arguments(request)
    request.add_argument(
        "--json", dest="document", metavar="DOC",
        help="inline JSON request document (see repro.service.AnalysisRequest)",
    )
    request.add_argument(
        "--file", metavar="PATH",
        help="read the JSON request document from PATH ('-' = stdin)",
    )
    request.add_argument(
        "--pretty", action="store_true", help="indent the JSON response",
    )

    serve = subparsers.add_parser(
        "serve",
        help="serve JSON requests from stdin line by line (NDJSON) on one warm service, "
             "or concurrently over TCP with --listen",
    )
    _add_service_arguments(serve)
    serve.add_argument(
        "--listen", type=_listen_address, metavar="HOST:PORT", default=None,
        help="serve NDJSON (+ HTTP /stats, /submit) over TCP instead of stdin; "
             "requests run concurrently on an executor pool (port 0 = ephemeral)",
    )
    serve.add_argument(
        "--max-inflight", type=_positive_int, default=2, metavar="N",
        help="executor width with --listen: requests executing concurrently (default 2)",
    )
    serve.add_argument(
        "--queue-depth", type=_non_negative_int, default=16, metavar="N",
        help="requests allowed to wait beyond the executing ones before admission "
             "control answers {\"error\": {\"type\": \"Overloaded\"}} (default 16)",
    )

    worker = subparsers.add_parser(
        "worker",
        help="host a distributed fleet worker: price trial shards shipped over TCP "
             "(see AggregateRiskEngine.run_distributed)",
    )
    worker.add_argument(
        "--listen", type=_listen_address, metavar="HOST:PORT",
        default=("127.0.0.1", 0),
        help="listen address (default 127.0.0.1:0 = ephemeral port, printed on start)",
    )
    worker.add_argument("--backend", default="vectorized", choices=BACKEND_NAMES)
    worker.add_argument("--workers", type=int, default=1,
                        help="workers for the multicore backend")
    _add_native_arguments(worker)
    worker.add_argument(
        "--cache-size", type=_positive_int, default=32,
        help="digest-keyed shard-plan cache capacity (default 32)",
    )
    worker.add_argument(
        "--name", default=None,
        help="provenance label stamped into produced partials (default worker-<pid>)",
    )

    backends = subparsers.add_parser(
        "backends",
        help="list the engine backends with availability probes",
    )
    backends.add_argument(
        "--json", action="store_true", dest="as_json",
        help="emit the probe results as a JSON object",
    )
    backends.add_argument(
        "--probe-workers", metavar="ADDRS", default=None,
        help="comma-separated are-worker addresses to probe for the distributed "
             "row (default: the ARE_WORKERS environment variable)",
    )

    project = subparsers.add_parser(
        "project", help="project full-scale runtimes with the analytical cost models"
    )
    project.add_argument("--trials", type=int, default=1_000_000)
    project.add_argument("--events-per-trial", type=int, default=1000)
    project.add_argument("--elts-per-layer", type=int, default=15)
    project.add_argument("--layers", type=int, default=1)
    project.add_argument("--cores", type=int, default=8)

    return parser


def _add_run_arguments(sub: argparse.ArgumentParser) -> None:
    sub.add_argument("--preset", default="bench", choices=preset_names())
    sub.add_argument("--seed", type=int, default=None, help="override the preset seed")
    sub.add_argument("--backend", default="vectorized", choices=BACKEND_NAMES)
    sub.add_argument("--workers", type=int, default=1, help="workers for the multicore backend")
    sub.add_argument(
        "--shards", type=_non_negative_int, default=0, metavar="N",
        help="execute as N disjoint trial shards, merged exactly "
             "(bounds the per-pass working set; 0 = one shard)",
    )
    sub.add_argument("--threads-per-block", type=int, default=256)
    sub.add_argument("--chunk-size", type=int, default=4)
    _add_native_arguments(sub)
    sub.add_argument("--phases", action="store_true", help="record the phase breakdown")


def _add_native_arguments(sub: argparse.ArgumentParser) -> None:
    sub.add_argument(
        "--dtype", default="float64", choices=DTYPE_NAMES,
        help="loss-stack precision of the native backend's fused gather "
             "(float32 halves the gather bandwidth; other backends ignore this)",
    )
    sub.add_argument(
        "--native-threads", type=_non_negative_int, default=0, metavar="N",
        help="OpenMP threads of the native backend's C kernel (0 = runtime default)",
    )


def _add_service_arguments(sub: argparse.ArgumentParser) -> None:
    sub.add_argument("--backend", default="vectorized", choices=BACKEND_NAMES)
    sub.add_argument("--workers", type=int, default=1, help="workers for the multicore backend")
    _add_native_arguments(sub)
    sub.add_argument(
        "--cache-size", type=_positive_int, default=32,
        help="plan-cache capacity of the service (default 32)",
    )
    sub.add_argument(
        "--result-cache", metavar="DIR", nargs="?", const="", default=None,
        help="enable delta-aware result caching for 'run' requests; with DIR "
             "the cached blocks persist there across service restarts "
             "(bare flag = in-memory only)",
    )
    sub.add_argument(
        "--result-cache-size", type=_positive_int, default=16,
        help="resident result-cache entries (default 16)",
    )


def _result_cache_kwargs(args: argparse.Namespace) -> dict:
    """RiskService kwargs of the ``--result-cache`` options (empty when off)."""
    spec = getattr(args, "result_cache", None)
    if spec is None:
        return {}
    kwargs = {
        "result_cache": True,
        "result_cache_size": getattr(args, "result_cache_size", 16),
    }
    if spec:
        kwargs["result_cache_dir"] = spec
    return kwargs


def _build_workload(args: argparse.Namespace):
    spec = preset(args.preset)
    if args.seed is not None:
        spec = spec.scaled(seed=args.seed)
    return WorkloadGenerator(spec).generate()


def _build_config(args: argparse.Namespace) -> EngineConfig:
    return EngineConfig(
        backend=args.backend,
        n_workers=args.workers,
        trial_shards=max(getattr(args, "shards", 0), 1),
        threads_per_block=getattr(args, "threads_per_block", 256),
        gpu_chunk_size=getattr(args, "chunk_size", 4),
        dtype=getattr(args, "dtype", "float64"),
        native_threads=getattr(args, "native_threads", 0),
        record_phases=getattr(args, "phases", False),
    )


def _build_service(args: argparse.Namespace, workload=None) -> RiskService:
    """One warm RiskService per CLI invocation, preloaded with the workload."""
    service = RiskService(config=_build_config(args))
    if workload is not None:
        service.register_workload(args.preset, workload)
    return service


def _command_generate(args: argparse.Namespace) -> int:
    workload = _build_workload(args)
    path = save_yet(workload.yet, args.out)
    print(f"workload : {workload.summary()}")
    print(f"YET saved: {path}")
    return 0


def _command_run(args: argparse.Namespace) -> int:
    fleet: tuple[str, ...] = ()
    if getattr(args, "fleet", None):
        fleet = tuple(
            address.strip() for address in args.fleet.split(",") if address.strip()
        )
    if fleet and args.batch > 0:
        print(
            "error: --fleet prices single runs; batch pricing is not distributed",
            file=sys.stderr,
        )
        return 2
    workload = _build_workload(args)
    service = _build_service(args, workload)
    if args.batch > 0:
        response = service.submit(
            AnalysisRequest(
                kind="run_many",
                program=args.preset,
                variants=args.batch,
                shards=args.shards,
            )
        )
        print(f"workload : {workload.summary()}")
        print(f"batch    : {len(response.results)} variants x {workload.program.n_layers} layers "
              f"priced in one {response.backend} invocation ({response.total_seconds:.4f}s)")
        for quote in response.quotes:
            print(f"  {quote.summary()}")
        if response.results[0].phase_breakdown is not None:
            print(response.results[0].phase_breakdown.format_table())
        return 0
    request = AnalysisRequest(
        kind="run", program=args.preset, shards=args.shards, workers=fleet
    )
    try:
        request.validate()
    except RequestValidationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    response = service.submit(request)
    result = response.result
    print(f"workload : {workload.summary()}")
    print(f"result   : {result.summary()}"
          + (f" shards={result.details.get('trial_shards')}" if args.shards else ""))
    if fleet:
        details = result.details["fleet"]
        print(f"fleet    : {len(details['shards_per_worker'])} workers x "
              f"{details['n_shards']} shards"
              + (f", dead: {', '.join(details['dead_workers'])}"
                 if details["dead_workers"] else ""))
    if result.phase_breakdown is not None:
        print(result.phase_breakdown.format_table())
    return 0


def _command_sweep(args: argparse.Namespace) -> int:
    workload = _build_workload(args)
    service = _build_service(args, workload)
    print(f"workload : {workload.summary()}")
    print(f"sweep    : {args.variants} variants x {workload.program.n_layers} layers "
          f"on {args.backend}"
          + (f", <= {args.block_rows} rows/block" if args.block_rows else ", one block"))
    response = service.submit(
        AnalysisRequest(
            kind="sweep",
            program=args.preset,
            variants=args.variants,
            max_rows_per_block=args.block_rows,
            dedupe=not args.no_dedupe,
            shards=args.shards,
        )
    )
    cursor = 0
    for block in response.details["blocks"]:
        print(f"  {block['summary']}")
        for quote in response.quotes[cursor : cursor + block["n_programs"]]:
            print(f"    {quote.summary()}")
        cursor += block["n_programs"]
    print(f"total    : {len(response.quotes)} quotes in {response.total_seconds:.4f}s")
    return 0


def _command_metrics(args: argparse.Namespace) -> int:
    workload = _build_workload(args)
    service = _build_service(args, workload)
    response = service.submit(AnalysisRequest(kind="run", program=args.preset))
    result = response.result
    return_periods = tuple(float(x) for x in args.return_periods.split(",") if x)
    metrics = compute_risk_metrics(result.ylt.portfolio_losses(), return_periods=return_periods)
    print(f"workload : {workload.summary()}")
    print(f"result   : {result.summary()}")
    print()
    print(format_metrics_report(metrics, title=f"Portfolio risk ({args.preset})"))
    return 0


def _command_uncertainty(args: argparse.Namespace) -> int:
    if args.method == "batched" and args.backend not in (
        "vectorized", "chunked", "multicore", "native",
    ):
        print(
            f"error: backend {args.backend!r} has no stacked execution path; "
            "use --backend vectorized/chunked/multicore/native or --method replay",
            file=sys.stderr,
        )
        return 2
    workload = _build_workload(args)
    config = _build_config(args).replace(
        record_max_occurrence=False, replication_block=args.block
    )
    service = RiskService(config=config)
    service.register_workload(args.preset, workload)
    return_periods = tuple(float(x) for x in args.return_periods.split(",") if x)
    # Fall back to the preset seed so the default invocation is reproducible.
    seed = args.seed if args.seed is not None else preset(args.preset).seed

    response = service.submit(
        AnalysisRequest(
            kind="uncertainty",
            program=args.preset,
            replications=args.replications,
            cv=args.cv,
            family=args.family,
            method=args.method,
            replication_block=args.block,
            return_periods=return_periods,
            seed=seed,
        )
    )

    print(f"workload : {workload.summary()}")
    block_note = f", block={args.block}" if args.block else ""
    print(f"analysis : {args.replications} replications (cv={args.cv:g}, {args.family}) "
          f"via {args.method} on {response.backend}{block_note} "
          f"in {response.total_seconds:.4f}s")
    print()
    header = f"{'metric':<12}{'mean':>16}{'std':>14}{'p5':>16}{'p95':>16}"
    print(header)
    print("-" * len(header))
    for name, summary in response.bands.items():
        print(f"{name:<12}{summary.mean:>16,.0f}{summary.std:>14,.0f}"
              f"{summary.low:>16,.0f}{summary.high:>16,.0f}")

    print()
    print(f"quote    : {response.quotes[0].summary()}")
    return 0


def _read_request_document(args: argparse.Namespace) -> str:
    if args.document is not None and args.file is not None:
        raise RequestValidationError("pass either --json or --file, not both")
    if args.document is not None:
        return args.document
    if args.file is not None and args.file != "-":
        with open(args.file, "r", encoding="utf-8") as handle:
            return handle.read()
    return sys.stdin.read()


def _command_request(args: argparse.Namespace) -> int:
    try:
        document = _read_request_document(args)
        with RiskService(
            config=_build_config(args),
            cache_size=args.cache_size,
            **_result_cache_kwargs(args),
        ) as service:
            response = service.submit(document)
    except (RequestValidationError, json.JSONDecodeError) as exc:
        # from_json wraps decode errors in RequestValidationError, but a
        # document that fails to decode before reaching the service (or a
        # future path that re-raises the original) must exit 2 identically.
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(json.dumps(response.to_dict(), indent=2 if args.pretty else None, sort_keys=True))
    return 0


def _serve_stats_line(answered: int, service: RiskService) -> str:
    stats_line = f"served {answered} requests | {service.cache_stats().summary()}"
    result_cache_stats = service.result_cache_stats()
    if result_cache_stats is not None:
        stats_line += f" | {result_cache_stats.summary()}"
    return stats_line


def _serve_listen(args: argparse.Namespace) -> int:
    """Concurrent TCP serving: asyncio front end over an executor pool."""
    import asyncio

    from repro.service.server import RiskServer

    host, port = args.listen
    exit_code = 0
    with RiskService(
        config=_build_config(args),
        cache_size=args.cache_size,
        **_result_cache_kwargs(args),
    ) as service:
        server = RiskServer(
            service,
            host=host,
            port=port,
            max_inflight=args.max_inflight,
            queue_depth=args.queue_depth,
        )

        async def _main() -> None:
            await server.start()
            print(
                f"listening on {server.host}:{server.port} ({args.backend}, "
                f"max in-flight {server.max_inflight}, "
                f"queue depth {server.queue_depth}); NDJSON or HTTP, "
                "SIGINT/SIGTERM drains",
                file=sys.stderr,
                flush=True,
            )
            await server.run(install_signal_handlers=True)

        try:
            asyncio.run(_main())
        except KeyboardInterrupt:
            # add_signal_handler normally absorbs SIGINT into a graceful
            # drain; this is the fallback when it is unavailable.
            exit_code = 130
        finally:
            with contextlib.suppress(Exception):
                print(
                    f"{server.stats.summary()} | {service.cache_stats().summary()}",
                    file=sys.stderr,
                    flush=True,
                )
    return exit_code


def _command_serve(args: argparse.Namespace) -> int:
    """Answer NDJSON requests on one warm service (stdin loop or TCP).

    The stdin loop is crash-proof per line: a malformed request line — bad
    JSON, a schema violation, or any error the engine raises while executing
    it — answers with a structured ``{"error": {...}}`` line and the warm
    service keeps serving.  Every response line is flushed immediately so a
    pipe driving the loop sees each answer as soon as it exists.  Ctrl-C and
    a reader that goes away (broken pipe) both end the loop cleanly: the
    final stats line always reaches stderr, and the exit code is 130 for
    SIGINT (the shell convention) and 0 for a vanished reader.
    """
    if args.listen is not None:
        return _serve_listen(args)
    answered = 0
    exit_code = 0
    with RiskService(
        config=_build_config(args),
        cache_size=args.cache_size,
        **_result_cache_kwargs(args),
    ) as service:
        banner = f"serving on {args.backend} (plan cache: {args.cache_size} entries"
        if service.result_cache is not None:
            tier = service.result_cache.disk_dir
            banner += f", result cache: {args.result_cache_size} resident"
            banner += f" @ {tier}" if tier is not None else ""
        print(
            banner + "); one JSON request per line",
            file=sys.stderr,
            flush=True,
        )
        try:
            for line in sys.stdin:
                line = line.strip()
                if not line:
                    continue
                try:
                    response = service.submit(line)
                except Exception as exc:  # noqa: BLE001 - the loop must survive any request
                    print(json.dumps(error_payload(exc)), flush=True)
                    continue
                print(json.dumps(response.to_dict(), sort_keys=True), flush=True)
                answered += 1
        except KeyboardInterrupt:
            exit_code = 130
        except BrokenPipeError:
            # The reader went away; stop quietly and keep stdout's dying
            # pipe from tracebacking again during interpreter shutdown.
            with contextlib.suppress(OSError):
                os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
            exit_code = 0
        finally:
            # stderr can be a broken pipe too; the stats line is best-effort
            # but must never turn a clean drain into a traceback.
            with contextlib.suppress(Exception):
                print(_serve_stats_line(answered, service), file=sys.stderr, flush=True)
    return exit_code


def _command_worker(args: argparse.Namespace) -> int:
    """Host one distributed fleet worker until SIGINT or a shutdown request.

    The worker owns its warm state — digest-keyed programs, YET stores, and
    the shard-plan cache — and prints the same stats-line shape on shutdown
    that ``are serve`` does, so fleet and service logs read alike.
    """
    from repro.distributed.worker import FleetWorker

    host, port = args.listen
    worker = FleetWorker(
        config=_build_config(args),
        host=host,
        port=port,
        name=args.name,
        cache_size=args.cache_size,
    )
    worker.start()
    exit_code = 0
    try:
        print(
            f"worker {worker.name} listening on {worker.address} "
            f"({args.backend}; plan cache: {args.cache_size} entries)",
            file=sys.stderr,
            flush=True,
        )
        try:
            worker.wait()
        except KeyboardInterrupt:
            exit_code = 130
    finally:
        worker.stop()
        with contextlib.suppress(Exception):
            print(worker.stats_line(), file=sys.stderr, flush=True)
    return exit_code


#: One-line descriptions of the always-available pure-Python backends.
_BACKEND_NOTES = {
    "sequential": "per-trial reference loop (conformance oracle)",
    "vectorized": "NumPy whole-shard kernels (default)",
    "chunked": "NumPy kernels over bounded event chunks",
    "multicore": "worker processes over trial blocks (shared-memory transport)",
    "gpu": "simulated device: paper-figure cost model, not a fast path",
    "native": "compiled C fused kernels via ctypes (OpenMP, optional float32)",
    "distributed": "fleet execution across are-worker processes (run_distributed)",
}


def _worker_probe_addresses(args: argparse.Namespace | None = None) -> list[str]:
    """Worker addresses to probe: ``--probe-workers`` or ``ARE_WORKERS``."""
    spec = getattr(args, "probe_workers", None) if args is not None else None
    if spec is None:
        spec = os.environ.get("ARE_WORKERS", "")
    return [part.strip() for part in spec.split(",") if part.strip()]


def _backend_probes(worker_addresses: Sequence[str] = ()) -> dict:
    """Availability probe per backend (the payload of ``are backends``)."""
    from repro.core.native.build import native_status
    from repro.distributed.fleet import probe_worker

    probes: dict = {}
    for name in BACKEND_NAMES:
        entry: dict = {"available": True, "note": _BACKEND_NOTES[name]}
        if name == "multicore":
            entry["cpu_count"] = os.cpu_count()
        if name == "native":
            status = native_status()
            entry["available"] = True  # falls back to NumPy, never unusable
            entry["compiled_tier"] = status["available"]
            entry["compiler"] = status["compiler"]
            entry["compiler_version"] = status["compiler_version"]
            entry["openmp"] = status["openmp"]
            entry["cached_library"] = status["cached_library"]
            if status["reason"]:
                entry["fallback_reason"] = status["reason"]
        probes[name] = entry
    distributed: dict = {"note": _BACKEND_NOTES["distributed"]}
    if worker_addresses:
        workers = {address: probe_worker(address) for address in worker_addresses}
        distributed["workers"] = workers
        distributed["available"] = any(p["reachable"] for p in workers.values())
    else:
        distributed["available"] = False
        distributed["fallback_reason"] = (
            "no workers configured (start `are worker` and set ARE_WORKERS=HOST:PORT,... "
            "or pass --probe-workers)"
        )
    probes["distributed"] = distributed
    return probes


def _command_backends(args: argparse.Namespace) -> int:
    probes = _backend_probes(_worker_probe_addresses(args))
    if args.as_json:
        print(json.dumps({"backends": probes}, indent=2, sort_keys=True))
        return 0
    for name, entry in probes.items():
        print(f"{name:<11} {entry['note']}")
        if name == "native":
            if entry["compiled_tier"]:
                cached = "cached" if entry["cached_library"] else "will compile on first use"
                openmp = "with OpenMP" if entry["openmp"] else "without OpenMP"
                print(f"{'':11} compiler: {entry['compiler_version']} ({openmp}; {cached})")
            else:
                print(f"{'':11} compiled tier unavailable: {entry['fallback_reason']}")
                print(f"{'':11} runs on the vectorized NumPy fallback (identical results)")
        if name == "distributed":
            for address, report in entry.get("workers", {}).items():
                if report["reachable"]:
                    print(f"{'':11} {address}: reachable ({report['worker']})")
                else:
                    print(f"{'':11} {address}: unreachable ({report['error']})")
            if "fallback_reason" in entry:
                print(f"{'':11} {entry['fallback_reason']}")
    return 0


def _command_project(args: argparse.Namespace) -> int:
    shape = WorkloadShape(
        n_trials=args.trials,
        events_per_trial=float(args.events_per_trial),
        n_elts=args.elts_per_layer,
        n_layers=args.layers,
    )
    summary = project_summary(shape, n_cores=args.cores, cpu_model=CPUCostModel())
    print(f"projected runtimes for {args.trials:,} trials x {args.events_per_trial} events "
          f"x {args.elts_per_layer} ELTs x {args.layers} layer(s):")
    for name, seconds in summary.items():
        print(f"  {name:<16}: {seconds:10.2f} s")
    return 0


_COMMANDS = {
    "generate": _command_generate,
    "run": _command_run,
    "sweep": _command_sweep,
    "metrics": _command_metrics,
    "uncertainty": _command_uncertainty,
    "request": _command_request,
    "serve": _command_serve,
    "worker": _command_worker,
    "backends": _command_backends,
    "project": _command_project,
}


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point (returns a process exit code)."""
    parser = build_parser()
    args = parser.parse_args(argv)
    handler = _COMMANDS[args.command]
    return handler(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
