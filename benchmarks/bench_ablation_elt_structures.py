"""Ablation — ELT lookup structures (Section III-B's design discussion).

The paper argues for direct access tables over compact representations
(sorted arrays with binary search, hash tables) because the aggregate analysis
is bound by random ELT lookups and the direct access table needs exactly one
memory access per lookup.  This ablation measures the batched random-lookup
throughput of the three structures on an ELT with the paper's sparsity
(20 K non-zero records against a much larger catalog) and records their memory
footprints.
"""

import numpy as np
import pytest

from repro.elt.direct_access import DirectAccessTable
from repro.elt.hashed_table import HashedEventLossTable
from repro.elt.sorted_table import SortedEventLossTable
from repro.elt.table import EventLossTable

CATALOG_SIZE = 500_000
N_RECORDS = 20_000
N_QUERIES = 200_000

STRUCTURES = {
    "direct_access": DirectAccessTable,
    "sorted_binary_search": SortedEventLossTable,
    "hashed_open_addressing": HashedEventLossTable,
}


@pytest.fixture(scope="module")
def elt() -> EventLossTable:
    rng = np.random.default_rng(42)
    event_ids = rng.choice(CATALOG_SIZE, size=N_RECORDS, replace=False)
    losses = rng.gamma(2.0, 1e5, size=N_RECORDS)
    return EventLossTable(event_ids, losses, CATALOG_SIZE, name="ablation")


@pytest.fixture(scope="module")
def queries() -> np.ndarray:
    # Uniform random event ids: the YET draws events from the whole catalog,
    # so most lookups miss (zero loss), exactly as in the real engine.
    return np.random.default_rng(7).integers(0, CATALOG_SIZE, size=N_QUERIES)


@pytest.mark.benchmark(group="ablation-elt-structures")
@pytest.mark.parametrize("name", list(STRUCTURES))
def test_ablation_lookup_throughput(benchmark, elt, queries, name):
    structure = STRUCTURES[name](elt)
    reference = DirectAccessTable(elt).lookup_many(queries)

    result = benchmark(lambda: structure.lookup_many(queries))

    np.testing.assert_allclose(result, reference)
    benchmark.extra_info["ablation"] = "elt-structures"
    benchmark.extra_info["structure"] = name
    benchmark.extra_info["memory_bytes"] = structure.memory_bytes
    benchmark.extra_info["n_queries"] = N_QUERIES
    benchmark.extra_info["catalog_size"] = CATALOG_SIZE
    benchmark.extra_info["n_records"] = N_RECORDS


def test_ablation_memory_tradeoff(elt):
    """Direct access trades memory for lookup speed, as the paper states."""
    direct = DirectAccessTable(elt)
    compact = SortedEventLossTable(elt)
    assert direct.memory_bytes > 10 * compact.memory_bytes
