"""Figure 2a — sequential analysis time vs number of ELTs per layer.

Paper configuration: 1 layer, 1 million trials, 1000 events per trial, ELTs
per layer varied from 3 to 15; runtime grows linearly in the ELT count.

Scaled reproduction: 2000 trials x 100 events, ELTs per layer 3..15, using the
single-process vectorized backend (the paper's claim being reproduced is the
*linear scaling in the ELT dimension*, which is backend-independent).  The
sub-layer for each point reuses the ELTs of one 15-ELT workload so every sweep
point sees identical data.
"""

import pytest

from repro.core.config import EngineConfig
from repro.core.engine import AggregateRiskEngine
from repro.portfolio.layer import Layer
from repro.portfolio.program import ReinsuranceProgram

from .conftest import build_workload

ELT_COUNTS = (3, 6, 9, 12, 15)


@pytest.mark.benchmark(group="fig2a-elts-per-layer")
@pytest.mark.parametrize("n_elts", ELT_COUNTS)
def test_fig2a_sequential_time_vs_elts_per_layer(benchmark, n_elts):
    workload = build_workload(n_layers=1, elts_per_layer=15)
    base_layer = workload.program[0]
    layer = Layer(base_layer.elts[:n_elts], base_layer.terms, name=f"elts-{n_elts}")
    program = ReinsuranceProgram([layer], name=f"fig2a-{n_elts}")
    engine = AggregateRiskEngine(EngineConfig(backend="vectorized"))

    result = benchmark(lambda: engine.run(program, workload.yet))

    benchmark.extra_info["figure"] = "2a"
    benchmark.extra_info["elts_per_layer"] = n_elts
    benchmark.extra_info["n_trials"] = workload.yet.n_trials
    benchmark.extra_info["events_per_trial"] = workload.yet.mean_events_per_trial
    benchmark.extra_info["total_lookups"] = (
        workload.yet.n_occurrences * n_elts
    )
    assert result.ylt.n_trials == workload.yet.n_trials
