"""Figure 2d — sequential analysis time vs number of events in a trial.

Paper configuration: 1 layer, 15 ELTs, 100,000 trials, events per trial varied
from 800 to 1200; runtime grows linearly in the trial length.

Scaled reproduction: 2000 trials, 15 ELTs, events per trial 80..120 (the same
+/-20 % span around the nominal length), vectorized backend.  A separate YET
is simulated from the same catalog for each trial length.
"""

import pytest

from repro.core.config import EngineConfig
from repro.core.engine import AggregateRiskEngine
from repro.yet.simulator import YETSimulator

from .conftest import build_workload

EVENTS_PER_TRIAL = (80, 90, 100, 110, 120)


@pytest.mark.benchmark(group="fig2d-events-per-trial")
@pytest.mark.parametrize("events_per_trial", EVENTS_PER_TRIAL)
def test_fig2d_sequential_time_vs_events_per_trial(benchmark, events_per_trial):
    workload = build_workload()
    simulator = YETSimulator(workload.catalog)
    yet = simulator.simulate_fixed_length(
        workload.yet.n_trials, events_per_trial, rng=2012
    )
    engine = AggregateRiskEngine(EngineConfig(backend="vectorized"))

    result = benchmark(lambda: engine.run(workload.program, yet))

    benchmark.extra_info["figure"] = "2d"
    benchmark.extra_info["events_per_trial"] = events_per_trial
    benchmark.extra_info["n_trials"] = yet.n_trials
    benchmark.extra_info["elts_per_layer"] = workload.program[0].n_elts
    assert result.ylt.n_trials == yet.n_trials
