"""Figure 2c — sequential analysis time vs number of layers.

Paper configuration: 15 ELTs per layer, 1 million trials, 1000 events per
trial, layers varied from 1 to 5; runtime grows linearly in the layer count.

Scaled reproduction: 2000 trials x 100 events, 15 ELTs per layer, layers 1..5,
vectorized backend.  The sweep points take layer-prefixes of one 5-layer
program so every point sees identical per-layer data.
"""

import pytest

from repro.core.config import EngineConfig
from repro.core.engine import AggregateRiskEngine

from .conftest import build_workload

LAYER_COUNTS = (1, 2, 3, 4, 5)


@pytest.mark.benchmark(group="fig2c-layers")
@pytest.mark.parametrize("n_layers", LAYER_COUNTS)
def test_fig2c_sequential_time_vs_layers(benchmark, n_layers):
    workload = build_workload(n_layers=max(LAYER_COUNTS))
    program = workload.program.subset(range(n_layers), name=f"fig2c-{n_layers}")
    engine = AggregateRiskEngine(EngineConfig(backend="vectorized"))

    result = benchmark(lambda: engine.run(program, workload.yet))

    benchmark.extra_info["figure"] = "2c"
    benchmark.extra_info["n_layers"] = n_layers
    benchmark.extra_info["n_trials"] = workload.yet.n_trials
    benchmark.extra_info["elts_per_layer"] = program.mean_elts_per_layer
    assert result.ylt.n_layers == n_layers
