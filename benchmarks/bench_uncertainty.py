"""Replication-batched secondary uncertainty vs the per-replication replay loop.

The replay loop rebuilds the program (dense loss matrices included) and
reruns the whole engine once per replication, so an R-replication uncertainty
band costs R full engine invocations; the batched engine samples every
replication up front and prices all of them as fused stack rows in one
stacked pass over the YET.  Two kinds of measurements:

* ``test_uncertainty_*`` — pytest-benchmark sweeps of the batched and replay
  methods over a widening replication axis (plus the streamed/chunked
  variant);
* ``test_batched_speedup_at_64_replications`` — a plain assertion (runs
  without ``--benchmark-only``) that the batched path is at least 3x faster
  than the replay loop at 64 replications on the vectorized backend, the
  acceptance criterion of the replication-batching work.
"""

import time

import numpy as np
import pytest

from repro.core.config import EngineConfig
from repro.uncertainty import (
    SecondaryUncertaintyAnalysis,
    UncertainEventLossTable,
    UncertainLayer,
)

from .conftest import build_workload
from .record import record_benchmark

REPLICATION_SWEEP = (8, 32)

#: Modest trial axis (the replication axis is what grows here) over the
#: paper-shaped 15-ELT layer; the catalog is full-sized relative to the
#: trials so the replay loop's per-replication dense rebuild is visible,
#: as it is at production scale.
UNC_TRIALS = 250
UNC_EVENTS = 20
UNC_ELTS = 15
UNC_CATALOG = 40_000
UNC_CV = 0.5
SEED = 42


def _uncertain_analysis(backend: str = "vectorized", **config_overrides):
    workload = build_workload(
        n_trials=UNC_TRIALS,
        events_per_trial=UNC_EVENTS,
        n_layers=1,
        elts_per_layer=UNC_ELTS,
        catalog_size=UNC_CATALOG,
    )
    layers = [
        UncertainLayer(
            elts=[UncertainEventLossTable.from_elt(elt, cv=UNC_CV) for elt in layer.elts],
            terms=layer.terms,
            name=layer.name,
        )
        for layer in workload.program.layers
    ]
    config = EngineConfig(
        backend=backend, record_max_occurrence=False, **config_overrides
    )
    return SecondaryUncertaintyAnalysis(layers, config=config), workload.yet


@pytest.mark.benchmark(group="uncertainty-replications")
@pytest.mark.parametrize("method", ["replay", "batched"])
@pytest.mark.parametrize("n_replications", REPLICATION_SWEEP)
def test_uncertainty_vectorized(benchmark, n_replications, method):
    analysis, yet = _uncertain_analysis()
    summaries = benchmark(
        lambda: analysis.run_batched(yet, n_replications, rng=SEED, method=method)
    )
    benchmark.extra_info["n_replications"] = n_replications
    benchmark.extra_info["method"] = method
    assert summaries["aal"].values.size == n_replications


@pytest.mark.benchmark(group="uncertainty-streamed")
@pytest.mark.parametrize("block", [4, 16])
def test_uncertainty_streamed_chunked(benchmark, block):
    analysis, yet = _uncertain_analysis(backend="chunked", chunk_events=4096)
    summaries = benchmark(
        lambda: analysis.run_batched(yet, 32, rng=SEED, replication_block=block)
    )
    benchmark.extra_info["replication_block"] = block
    assert summaries["aal"].values.size == 32


def _best_of(n_repeats: int, fn) -> float:
    best = float("inf")
    for _ in range(n_repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_batched_speedup_at_64_replications():
    """Acceptance: batched >= 3x the replay loop at 64 replications (vectorized)."""
    analysis, yet = _uncertain_analysis()

    # Warm-up (and the golden cross-check while we are at it: identical
    # per-replication child streams mean identical metrics).
    batched = analysis.run_batched(yet, 64, rng=SEED, method="batched")
    replay = analysis.run_batched(yet, 64, rng=SEED, method="replay")
    for name in replay:
        np.testing.assert_allclose(
            batched[name].values, replay[name].values, rtol=1e-9, atol=0.0
        )

    batched_seconds = _best_of(
        3, lambda: analysis.run_batched(yet, 64, rng=SEED, method="batched")
    )
    replay_seconds = _best_of(
        3, lambda: analysis.run_batched(yet, 64, rng=SEED, method="replay")
    )
    speedup = replay_seconds / batched_seconds
    record_benchmark(
        "uncertainty",
        backend="vectorized",
        shape={
            "n_trials": UNC_TRIALS,
            "events_per_trial": UNC_EVENTS,
            "elts_per_layer": UNC_ELTS,
            "catalog_size": UNC_CATALOG,
            "n_replications": 64,
        },
        baseline_seconds=replay_seconds,
        candidate_seconds=batched_seconds,
        threshold=3.0,
        meta={"baseline": "per-replication replay", "candidate": "replication-batched"},
    )
    print(
        f"\n64 replications x {UNC_TRIALS} trials x {UNC_ELTS} ELTs: "
        f"replay {replay_seconds * 1e3:.1f} ms, batched {batched_seconds * 1e3:.1f} ms "
        f"-> {speedup:.2f}x"
    )
    assert speedup >= 3.0, (
        f"batched replication engine only {speedup:.2f}x faster than the replay "
        f"loop at 64 replications (expected >= 3x)"
    )
