"""Figure 5b — optimised GPU kernel: execution time vs threads per block.

Paper observation: with a chunk size of 4 the maximum number of threads per
block the shared memory supports is 192; sweeping the thread count in warp
multiples (32..192) shows only a small, gradual improvement.

Reproduction: the ``gpu`` backend runs the chunked kernel functionally on the
scaled workload while the device model projects the full-scale kernel time per
threads-per-block value at chunk size 4.
"""

import pytest

from repro.core.config import EngineConfig
from repro.core.engine import AggregateRiskEngine
from repro.core.gpu_sim import GPUSimulatedEngine
from repro.parallel.device import SimulatedGPU, WorkloadShape
from repro.workloads.presets import PAPER_FULL_SCALE

THREADS_PER_BLOCK = (32, 64, 96, 128, 160, 192)
CHUNK_SIZE = 4

FULL_SCALE_SHAPE = WorkloadShape(
    n_trials=PAPER_FULL_SCALE.n_trials,
    events_per_trial=float(PAPER_FULL_SCALE.events_per_trial),
    n_elts=PAPER_FULL_SCALE.elts_per_layer,
    n_layers=PAPER_FULL_SCALE.n_layers,
)


def test_fig5b_paper_thread_limit_at_chunk4():
    """The device model reproduces the paper's 192-thread limit at chunk 4."""
    assert SimulatedGPU().max_threads_for_chunk(CHUNK_SIZE) == 192


@pytest.mark.benchmark(group="fig5b-gpu-threads-optimised")
@pytest.mark.parametrize("threads_per_block", THREADS_PER_BLOCK)
def test_fig5b_optimised_gpu_time_vs_threads(benchmark, baseline_workload, threads_per_block):
    config = EngineConfig(
        backend="gpu",
        threads_per_block=threads_per_block,
        gpu_chunk_size=CHUNK_SIZE,
        gpu_optimised=True,
        record_max_occurrence=False,
    )
    engine = AggregateRiskEngine(config)

    result = benchmark(lambda: engine.run(baseline_workload.program, baseline_workload.yet))

    modeled = GPUSimulatedEngine(config).estimate_only(FULL_SCALE_SHAPE)
    benchmark.extra_info["figure"] = "5b"
    benchmark.extra_info["threads_per_block"] = threads_per_block
    benchmark.extra_info["chunk_size"] = CHUNK_SIZE
    benchmark.extra_info["modeled_full_scale_seconds"] = modeled.seconds
    benchmark.extra_info["paper_reference"] = "small gradual improvement, max 192 threads"
    assert result.modeled_seconds is not None
