"""Concurrent serving vs per-client serial loops: latency and throughput.

The asyncio front end (:mod:`repro.service.server`) exists so the warm
caches actually serve traffic: one process multiplexes every client over a
single :class:`~repro.service.service.RiskService`, so the plan cache that
client A warmed answers client B's identical question at warm-hit cost.
The pre-PR alternative was the serial NDJSON stdin loop — a single-tenant
pipe, so each concurrent client needs its own loop with its own cold
caches, and every distinct question pays full lowering again.

This harness pins that down on the 16-layer serving preset with a hot
working set: 8 clients that each ask the same 12 distinct questions —
candidate-term variants of one book (distinct content digests, so nothing
short-circuits through content-addressed caching):

* ``test_serve_bit_identity`` — the correctness half, kept on in CI and
  parametrized over every backend: answers served concurrently over TCP
  are bit-identical to serial in-process submission;
* ``test_concurrent_serving_speedup`` — the acceptance gate (deselected in
  CI like the other timing gates): under 8 concurrent pipelined clients
  the server-side p99 processing latency stays within 3x the serial
  loop's p50, and aggregate throughput is at least 2x the per-client
  serial loops.  Emits ``BENCH_serve.json``.

The serial baseline includes the JSON round trip (``to_dict`` + dumps) the
NDJSON protocol performs per line and is charged nothing for process
start-up — the comparison is loop vs loop on warm Python.  The server-side
percentiles clock lowering + execution only (executor-slot wait is
reported separately as ``pending``), so the latency gate catches the
failure mode concurrency can actually introduce here: a lock serialising
the serving path and dilating every request.
"""

from __future__ import annotations

import json
import threading
import time

import numpy as np
import pytest

from repro.core.config import BACKEND_NAMES, EngineConfig
from repro.financial.terms import LayerTerms
from repro.portfolio.program import ReinsuranceProgram
from repro.service import RiskService
from repro.service.server import ServeClient, ServerThread

from .conftest import build_workload
from .record import record_benchmark

SERVE_TRIALS = 200
SERVE_EVENTS = 40
SERVE_LAYERS = 16
SERVE_ELTS = 8
SERVE_CATALOG = 40_000

N_CLIENTS = 8
REQUESTS_PER_CLIENT = 12
#: Requests each client keeps outstanding on its connection (pipelining).
PIPELINE_WINDOW = 2
MAX_INFLIGHT = 2  # the `are serve` default; one core gains nothing from more
QUEUE_DEPTH = N_CLIENTS * PIPELINE_WINDOW  # admit every pipelined request

#: The hot working set: candidate-term variants of the registered book.
#: Scaling the occurrence retentions changes the program digest, so each
#: variant lowers to its own plan — cold in every single-tenant loop, a
#: shared warm hit on the server.
DOCUMENTS = [
    {"kind": "run", "program": f"book-{i}"} for i in range(REQUESTS_PER_CLIENT)
]


def _workload(n_layers: int = SERVE_LAYERS, n_trials: int = SERVE_TRIALS):
    return build_workload(
        n_trials=n_trials,
        events_per_trial=SERVE_EVENTS,
        n_layers=n_layers,
        elts_per_layer=SERVE_ELTS,
        catalog_size=SERVE_CATALOG,
    )


def _term_variant(program: ReinsuranceProgram, scale: float) -> ReinsuranceProgram:
    layers = []
    for layer in program.layers:
        terms = layer.terms
        layers.append(
            layer.with_terms(
                LayerTerms(
                    occurrence_retention=terms.occurrence_retention * scale,
                    occurrence_limit=terms.occurrence_limit,
                    aggregate_retention=terms.aggregate_retention,
                    aggregate_limit=terms.aggregate_limit,
                )
            )
        )
    return ReinsuranceProgram(layers, name=program.name)


def _service(workload, backend: str = "vectorized") -> RiskService:
    service = RiskService(
        EngineConfig(backend=backend, n_workers=2 if backend == "multicore" else 1)
    )
    service.register_workload("book", workload)
    for i in range(REQUESTS_PER_CLIENT):
        variant = _term_variant(workload.program, 1.0 + 0.02 * i)
        service.register_program(f"book-{i}", variant)
        service.register_yet(f"book-{i}", workload.yet)
    return service


def _percentile(samples, q: float) -> float:
    ordered = sorted(samples)
    rank = max(int(np.ceil(q * len(ordered))) - 1, 0)
    return ordered[min(rank, len(ordered) - 1)]


def _round_trip(service: RiskService, document: dict) -> float:
    """One NDJSON-loop iteration: submit + serialise, returning the AAL."""
    line = json.dumps(service.submit(dict(document)).to_dict(), sort_keys=True)
    return json.loads(line)["results"][0]["portfolio_aal"]


def _serial_loops(workload):
    """(latencies, throughput, per-document AALs) of one fresh loop per client."""
    latencies = []
    reference: list[float] = []
    started = time.perf_counter()
    for _ in range(N_CLIENTS):
        reference = []
        with _service(workload) as service:  # single-tenant loop: cold caches
            for document in DOCUMENTS:
                t0 = time.perf_counter()
                reference.append(_round_trip(service, document))
                latencies.append(time.perf_counter() - t0)
    wall = time.perf_counter() - started
    return latencies, len(latencies) / wall, reference


def _concurrent_clients(workload):
    """(server stats, throughput, per-document AAL sets) under pipelined clients."""
    with _service(workload) as service:
        # Warm serving: the steady state the server exists for.  One pass
        # over the working set fills the shared plan cache.
        for document in DOCUMENTS:
            service.submit(dict(document))
        with ServerThread(
            service, max_inflight=MAX_INFLIGHT, queue_depth=QUEUE_DEPTH
        ) as handle:
            host, port = handle.server.host, handle.server.port
            barrier = threading.Barrier(N_CLIENTS + 1)
            aals: dict[int, set] = {i: set() for i in range(REQUESTS_PER_CLIENT)}
            aals_lock = threading.Lock()
            failures: list = []

            def drive(client_index: int) -> None:
                try:
                    with ServeClient(host, port) as client:
                        barrier.wait()
                        sent = received = 0
                        while received < REQUESTS_PER_CLIENT:
                            while (
                                sent < REQUESTS_PER_CLIENT
                                and sent - received < PIPELINE_WINDOW
                            ):
                                client.send({**DOCUMENTS[sent], "id": sent})
                                sent += 1
                            answer = client.recv()
                            received += 1
                            if "error" in answer:
                                failures.append(answer)
                            else:
                                with aals_lock:
                                    aals[answer["id"]].add(
                                        answer["results"][0]["portfolio_aal"]
                                    )
                except Exception as exc:  # noqa: BLE001 - surface in the main thread
                    failures.append(exc)

            threads = [
                threading.Thread(target=drive, args=(i,), daemon=True)
                for i in range(N_CLIENTS)
            ]
            for thread in threads:
                thread.start()
            barrier.wait()
            started = time.perf_counter()
            for thread in threads:
                thread.join(timeout=300)
            wall = time.perf_counter() - started
            with ServeClient(host, port) as client:
                stats = client.request({"op": "stats"})["stats"]
    assert not failures, f"concurrent serving failed: {failures[:3]}"
    throughput = (N_CLIENTS * REQUESTS_PER_CLIENT) / wall
    return stats, throughput, aals


@pytest.mark.parametrize("backend", BACKEND_NAMES)
def test_serve_bit_identity(backend):
    """Correctness half of the gate (kept on in CI): TCP == serial, per backend."""
    workload = _workload(n_layers=4, n_trials=100)
    document = {"kind": "run", "program": "book"}
    with _service(workload, backend) as serial_service:
        serial = serial_service.submit(dict(document)).to_dict()

    with _service(workload, backend) as service:
        with ServerThread(service, max_inflight=4, queue_depth=16) as handle:
            with ServeClient(handle.server.host, handle.server.port) as client:
                for i in range(6):
                    client.send({**document, "id": i})
                answers = [client.recv() for _ in range(6)]
    for answer in answers:
        assert "error" not in answer
        assert answer["results"][0]["portfolio_aal"] == serial["results"][0]["portfolio_aal"]
        assert answer["results"][0]["n_trials"] == serial["results"][0]["n_trials"]


def test_concurrent_serving_speedup():
    """Acceptance: 8 pipelined clients — p99 <= 3x serial p50, throughput >= 2x."""
    workload = _workload()
    serial_latencies, serial_throughput, reference = _serial_loops(workload)
    serial_p50 = _percentile(serial_latencies, 0.50)

    stats, throughput, aals = _concurrent_clients(workload)
    assert stats["rejected"] == 0  # the queue was sized to admit everything
    # Bit-identity while concurrent: every client got the serial answer for
    # every variant (one distinct AAL per document, equal to the reference).
    for i, serial_aal in enumerate(reference):
        assert aals[i] == {serial_aal}

    p99 = stats["p99_seconds"]
    throughput_gain = throughput / serial_throughput
    record_benchmark(
        "serve",
        backend="vectorized",
        shape={
            "n_trials": SERVE_TRIALS,
            "events_per_trial": SERVE_EVENTS,
            "n_layers": SERVE_LAYERS,
            "elts_per_layer": SERVE_ELTS,
            "catalog_size": SERVE_CATALOG,
            "n_clients": N_CLIENTS,
            "requests_per_client": REQUESTS_PER_CLIENT,
            "pipeline_window": PIPELINE_WINDOW,
            "max_inflight": MAX_INFLIGHT,
            "queue_depth": QUEUE_DEPTH,
        },
        baseline_seconds=1.0 / serial_throughput,
        candidate_seconds=1.0 / throughput,
        threshold=2.0,
        meta={
            "baseline": "per-client serial NDJSON loops (single-tenant, cold caches)",
            "candidate": "one warm asyncio server multiplexing 8 pipelined clients",
            "serial_p50_seconds": serial_p50,
            "serial_throughput_rps": serial_throughput,
            "concurrent_p50_seconds": stats["p50_seconds"],
            "concurrent_p99_seconds": p99,
            "concurrent_throughput_rps": throughput,
            "p99_vs_serial_p50": p99 / serial_p50,
            "latency_threshold": "p99 processing latency <= 3x serial p50",
        },
    )
    assert p99 <= 3.0 * serial_p50, (
        f"concurrent p99 {p99 * 1e3:.1f}ms exceeds 3x serial p50 "
        f"{serial_p50 * 1e3:.1f}ms under {N_CLIENTS} pipelined clients"
    )
    assert throughput_gain >= 2.0, (
        f"concurrent throughput is only {throughput_gain:.2f}x the serial loops "
        f"({throughput:.1f} vs {serial_throughput:.1f} req/s)"
    )
