"""Figure 6a — summary: total execution time of every implementation.

Paper values for 1 million trials x 1000 events x 15 ELTs (best tuning per
implementation): sequential CPU (single core of an i7-2600), multi-core CPU
(~125–135 s), basic GPU 38.47 s (3.2x vs the multi-core CPU), optimised GPU
22.72 s (5.4x).

Reproduction, two complementary views:

* **Measured** — each backend runs the same scaled workload under the
  benchmark (sequential runs a further-reduced trial count because a pure
  Python triple loop at 3M lookups per round would dominate the session; its
  measured time is normalised per trial in ``extra_info``).
* **Projected** — ``repro.core.projection.project_summary`` projects the
  full-scale runtime of all four implementations from the analytical CPU and
  GPU cost models; attached to ``extra_info`` and tabulated in EXPERIMENTS.md.
"""

import pytest

from repro.core.config import EngineConfig
from repro.core.engine import AggregateRiskEngine
from repro.core.projection import project_summary
from repro.parallel.device import WorkloadShape
from repro.parallel.executor import available_cores
from repro.workloads.presets import PAPER_FULL_SCALE

from .conftest import build_workload

FULL_SCALE_SHAPE = WorkloadShape(
    n_trials=PAPER_FULL_SCALE.n_trials,
    events_per_trial=float(PAPER_FULL_SCALE.events_per_trial),
    n_elts=PAPER_FULL_SCALE.elts_per_layer,
    n_layers=PAPER_FULL_SCALE.n_layers,
)

#: (label, config, sequential-style trial budget)
IMPLEMENTATIONS = (
    ("sequential_cpu", EngineConfig(backend="sequential", record_max_occurrence=False), 200),
    ("multicore_cpu", EngineConfig(backend="multicore",
                                   n_workers=max(available_cores(), 1),
                                   record_max_occurrence=False), 2000),
    ("basic_gpu", EngineConfig(backend="gpu", gpu_optimised=False, threads_per_block=256,
                               record_max_occurrence=False), 2000),
    ("optimised_gpu", EngineConfig(backend="gpu", gpu_optimised=True, threads_per_block=64,
                                   gpu_chunk_size=4, record_max_occurrence=False), 2000),
)


@pytest.mark.benchmark(group="fig6a-summary")
@pytest.mark.parametrize("label,config,n_trials", IMPLEMENTATIONS,
                         ids=[impl[0] for impl in IMPLEMENTATIONS])
def test_fig6a_total_time_per_implementation(benchmark, label, config, n_trials):
    workload = build_workload()
    yet = workload.yet.slice_trials(0, n_trials)
    engine = AggregateRiskEngine(config)

    result = benchmark.pedantic(
        lambda: engine.run(workload.program, yet),
        rounds=2,
        iterations=1,
        warmup_rounds=0,
    )

    projections = project_summary(FULL_SCALE_SHAPE, n_cores=8)
    benchmark.extra_info["figure"] = "6a"
    benchmark.extra_info["implementation"] = label
    benchmark.extra_info["measured_trials"] = n_trials
    benchmark.extra_info["measured_seconds_per_trial"] = result.wall_seconds / n_trials
    benchmark.extra_info["projected_full_scale_seconds"] = projections[label]
    benchmark.extra_info["paper_full_scale_seconds"] = {
        "sequential_cpu": 325.0,   # implied by 2.6x speedup over ~125 s
        "multicore_cpu": 125.0,
        "basic_gpu": 38.47,
        "optimised_gpu": 22.72,
    }[label]
    assert result.ylt.n_trials == n_trials


def test_fig6a_projected_ordering_matches_paper():
    """The projected full-scale times preserve the paper's ranking and factors."""
    projections = project_summary(FULL_SCALE_SHAPE, n_cores=8)
    assert (
        projections["sequential_cpu"]
        > projections["multicore_cpu"]
        > projections["basic_gpu"]
        > projections["optimised_gpu"]
    )
    assert projections["multicore_cpu"] / projections["basic_gpu"] == pytest.approx(3.2, rel=0.3)
    assert projections["multicore_cpu"] / projections["optimised_gpu"] == pytest.approx(5.4, rel=0.3)
