"""Trial-sharded execution: merge overhead and out-of-core memory.

The sharded refactor's pitch is "the reduction side of the paper's
map/reduce shape for free": executing a plan as N disjoint trial shards and
merging the :class:`~repro.core.results.PartialResult` blocks must cost
almost nothing in wall time (the kernels do the same arithmetic, just in N
passes) while bounding resident memory at one shard — which is what lets a
stored YET larger than RAM be priced through
:class:`~repro.yet.io.YetShardReader`.  This harness pins both claims on a
4x-oversized YET (its whole-table fused gather is ~4x the sharded working
set):

* ``test_sharded_runs`` — pytest-benchmark measurements of the monolithic
  and 8-shard vectorized runs;
* ``test_sharded_out_of_core_memory`` — a plain assertion (runs in the CI
  bench smoke) that the out-of-core run's peak traced memory is at least 2x
  below the monolithic in-memory run's, with bit-identity cross-checked.
  Emits ``BENCH_sharded.json``;
* ``test_sharded_wall_within_budget`` — the wall-time acceptance: an
  8-shard run stays within 1.15x of the monolithic wall time (deselected in
  CI like every timing-ratio gate; run locally to refresh the record).
"""

import time
import tracemalloc

import numpy as np
import pytest

from repro.core.config import EngineConfig
from repro.core.engine import AggregateRiskEngine
from repro.yet.io import YetShardReader, save_yet_store

from .conftest import build_workload
from .record import record_benchmark

SHARD_TRIALS = 4000
SHARD_EVENTS = 80
SHARD_LAYERS = 8
SHARD_ELTS = 4
SHARD_CATALOG = 20_000
N_SHARDS = 8

#: Wall-time acceptance: sharded within this factor of monolithic.
WALL_BUDGET = 1.15
#: Memory acceptance: out-of-core peak at least this factor below monolithic.
RSS_REDUCTION = 2.0


def _workload():
    return build_workload(
        n_trials=SHARD_TRIALS,
        events_per_trial=SHARD_EVENTS,
        n_layers=SHARD_LAYERS,
        elts_per_layer=SHARD_ELTS,
        catalog_size=SHARD_CATALOG,
    )


def _engine() -> AggregateRiskEngine:
    return AggregateRiskEngine(EngineConfig(backend="vectorized"))


def _warm(workload) -> None:
    """Build the dense matrices once so runs measure execution, not lowering."""
    for layer in workload.program.layers:
        layer.loss_matrix().combined_net_losses()


@pytest.mark.benchmark(group="sharded")
@pytest.mark.parametrize("n_shards", [1, N_SHARDS])
def test_sharded_runs(benchmark, n_shards):
    workload = _workload()
    _warm(workload)
    engine = AggregateRiskEngine(
        EngineConfig(backend="vectorized", trial_shards=n_shards)
    )
    benchmark(lambda: engine.run(workload.program, workload.yet))
    benchmark.extra_info["n_shards"] = n_shards
    benchmark.extra_info["n_trials"] = SHARD_TRIALS


def _best_of(n_repeats: int, fn) -> float:
    best = float("inf")
    for _ in range(n_repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_sharded_out_of_core_memory(tmp_path):
    """Acceptance: out-of-core peak memory >= 2x below the monolithic run's.

    The monolithic vectorized run holds the whole YET plus the fused
    ``(n_rows, total_events)`` gather; the out-of-core run holds one shard's
    columns, one shard's gather, the stack and the accumulated year-loss
    blocks.  Peaks are measured with ``tracemalloc`` (NumPy registers its
    allocations), which tracks the allocations under our control rather
    than noisy process RSS.
    """
    workload = _workload()
    _warm(workload)
    engine = _engine()
    store = save_yet_store(workload.yet, tmp_path / "yet_store")

    tracemalloc.start()
    try:
        tracemalloc.reset_peak()
        monolithic = engine.run(workload.program, workload.yet)
        _, monolithic_peak = tracemalloc.get_traced_memory()

        with YetShardReader(store) as reader:
            tracemalloc.reset_peak()
            sharded = engine.run_sharded(workload.program, reader, N_SHARDS)
            _, sharded_peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()

    np.testing.assert_array_equal(sharded.ylt.losses, monolithic.ylt.losses)
    reduction = monolithic_peak / sharded_peak

    wall_monolithic = _best_of(3, lambda: engine.run(workload.program, workload.yet))
    with YetShardReader(store) as reader:
        wall_sharded = _best_of(
            3, lambda: engine.run_sharded(workload.program, reader, N_SHARDS)
        )
    record_benchmark(
        "sharded",
        backend="vectorized",
        shape={
            "n_trials": SHARD_TRIALS,
            "events_per_trial": SHARD_EVENTS,
            "n_layers": SHARD_LAYERS,
            "elts_per_layer": SHARD_ELTS,
            "catalog_size": SHARD_CATALOG,
            "n_shards": N_SHARDS,
        },
        baseline_seconds=wall_monolithic,
        candidate_seconds=wall_sharded,
        threshold=1.0 / WALL_BUDGET,
        meta={
            "baseline": "monolithic in-memory vectorized run",
            "candidate": f"out-of-core run_sharded over {N_SHARDS} shards",
            "peak_monolithic_bytes": int(monolithic_peak),
            "peak_sharded_bytes": int(sharded_peak),
            "peak_reduction": round(reduction, 2),
            "wall_budget": WALL_BUDGET,
            "rss_reduction_threshold": RSS_REDUCTION,
        },
    )
    assert reduction >= RSS_REDUCTION, (
        f"out-of-core peak is only {reduction:.2f}x below monolithic "
        f"({sharded_peak / 1e6:.1f} MB vs {monolithic_peak / 1e6:.1f} MB)"
    )


def test_sharded_wall_within_budget():
    """Acceptance: an 8-shard run within 1.15x of the monolithic wall time."""
    workload = _workload()
    _warm(workload)
    monolithic_engine = _engine()
    sharded_engine = AggregateRiskEngine(
        EngineConfig(backend="vectorized", trial_shards=N_SHARDS)
    )

    reference = monolithic_engine.run(workload.program, workload.yet)
    candidate = sharded_engine.run(workload.program, workload.yet)
    np.testing.assert_array_equal(candidate.ylt.losses, reference.ylt.losses)

    wall_monolithic = _best_of(
        5, lambda: monolithic_engine.run(workload.program, workload.yet)
    )
    wall_sharded = _best_of(
        5, lambda: sharded_engine.run(workload.program, workload.yet)
    )
    ratio = wall_sharded / wall_monolithic
    assert ratio <= WALL_BUDGET, (
        f"8-shard run is {ratio:.3f}x the monolithic wall time "
        f"({wall_sharded:.4f}s vs {wall_monolithic:.4f}s; budget {WALL_BUDGET}x)"
    )
