"""Figure 5a — optimised (chunked) GPU kernel: execution time vs chunk size.

Paper observation: with a chunk size of 4 the optimised kernel reduces the
runtime from 38.47 s (basic kernel) to 22.72 s — a 1.7x improvement; the curve
is flat up to a chunk size of ~12 and deteriorates rapidly beyond that as the
shared-memory staging buffers overflow into global memory.

Reproduction: the ``gpu`` backend runs the chunked kernel functionally on the
scaled workload (timed by the benchmark) while the device model projects the
full-scale kernel time per chunk size (64 threads per block, the largest
configuration whose staging fits shared memory at chunk 12); the projections
are attached to ``extra_info``.
"""

import pytest

from repro.core.config import EngineConfig
from repro.core.engine import AggregateRiskEngine
from repro.core.gpu_sim import GPUSimulatedEngine
from repro.parallel.device import WorkloadShape
from repro.workloads.presets import PAPER_FULL_SCALE

CHUNK_SIZES = (1, 2, 4, 8, 12, 16, 20, 24)
THREADS_PER_BLOCK = 64

FULL_SCALE_SHAPE = WorkloadShape(
    n_trials=PAPER_FULL_SCALE.n_trials,
    events_per_trial=float(PAPER_FULL_SCALE.events_per_trial),
    n_elts=PAPER_FULL_SCALE.elts_per_layer,
    n_layers=PAPER_FULL_SCALE.n_layers,
)


@pytest.mark.benchmark(group="fig5a-gpu-chunk-size")
@pytest.mark.parametrize("chunk_size", CHUNK_SIZES)
def test_fig5a_optimised_gpu_time_vs_chunk_size(benchmark, baseline_workload, chunk_size):
    config = EngineConfig(
        backend="gpu",
        threads_per_block=THREADS_PER_BLOCK,
        gpu_chunk_size=chunk_size,
        gpu_optimised=True,
        record_max_occurrence=False,
    )
    engine = AggregateRiskEngine(config)

    result = benchmark(lambda: engine.run(baseline_workload.program, baseline_workload.yet))

    modeled = GPUSimulatedEngine(config).estimate_only(FULL_SCALE_SHAPE)
    benchmark.extra_info["figure"] = "5a"
    benchmark.extra_info["chunk_size"] = chunk_size
    benchmark.extra_info["threads_per_block"] = THREADS_PER_BLOCK
    benchmark.extra_info["modeled_full_scale_seconds"] = modeled.seconds
    benchmark.extra_info["spill_fraction"] = modeled.spill_fraction
    benchmark.extra_info["paper_reference"] = "22.72 s at chunk size 4 (vs 38.47 s basic)"
    assert result.modeled_seconds is not None
