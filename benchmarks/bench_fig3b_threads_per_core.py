"""Figure 3b — multi-core CPU: execution time vs threads per core.

Paper configuration: all 8 cores active, threads per core varied up to 512;
the runtime drops from 135 s to 125 s at 256 threads per core and then shows
diminishing returns — oversubscription recovers a moderate amount of time by
overlapping memory stalls and smoothing load imbalance.

Scaled reproduction: the ``multicore`` backend with *dynamic* scheduling and
the oversubscription factor (work items per worker) playing the role of
"threads per core".  The sweep uses all available cores.
"""

import pytest

from repro.core.config import EngineConfig
from repro.core.engine import AggregateRiskEngine
from repro.parallel.executor import available_cores
from repro.parallel.scheduling import SchedulingPolicy

OVERSUBSCRIPTION = (1, 4, 16, 64, 256)


@pytest.mark.benchmark(group="fig3b-threads-per-core")
@pytest.mark.parametrize("oversubscription", OVERSUBSCRIPTION)
def test_fig3b_multicore_time_vs_threads_per_core(benchmark, parallel_workload, oversubscription):
    n_workers = max(available_cores(), 1)
    engine = AggregateRiskEngine(EngineConfig(
        backend="multicore",
        n_workers=n_workers,
        scheduling=SchedulingPolicy.DYNAMIC if oversubscription > 1 else SchedulingPolicy.STATIC,
        oversubscription=oversubscription,
        record_max_occurrence=False,
    ))

    result = benchmark.pedantic(
        lambda: engine.run(parallel_workload.program, parallel_workload.yet),
        rounds=3,
        iterations=1,
        warmup_rounds=1,
    )

    benchmark.extra_info["figure"] = "3b"
    benchmark.extra_info["threads_per_core"] = oversubscription
    benchmark.extra_info["n_cores"] = n_workers
    benchmark.extra_info["n_trials"] = parallel_workload.yet.n_trials
    assert result.ylt.n_trials == parallel_workload.yet.n_trials
