"""RiskService plan/stack caching: warm cached requests vs cold requests.

The serving story of the request/response redesign is that the expensive
pre-kernel work — lowering the program to an ExecutionPlan, building each
layer's dense loss matrix, stacking the term-netted rows — is a pure
function of the request content, so a warm :class:`~repro.service.RiskService`
answers a repeated request straight from its content-addressed
:class:`~repro.service.PlanCache`.  This harness measures what that buys on
the 16-layer batch-pricing program:

* ``test_service_cache_requests`` — pytest-benchmark measurements of the
  cold path (fresh service + fresh layer objects per request, so every
  matrix and the stack are rebuilt) and the warm path (one service, the
  same request repeated);
* ``test_warm_cached_speedup_at_16_layers`` — a plain assertion (runs
  without ``--benchmark-only``) that the warm request is at least 2x faster
  than the cold one, the acceptance criterion of the RiskService work, with
  the bit-identity of warm and cold results cross-checked.  Emits
  ``BENCH_service_cache.json``.
"""

import time

import numpy as np
import pytest

from repro.core.config import EngineConfig
from repro.portfolio.layer import Layer
from repro.portfolio.program import ReinsuranceProgram
from repro.service import AnalysisRequest, RiskService

from .conftest import build_workload
from .record import record_benchmark

CACHE_TRIALS = 400
CACHE_EVENTS = 60
CACHE_LAYERS = 16
CACHE_ELTS = 8
CACHE_CATALOG = 40_000

REQUEST = AnalysisRequest(kind="run", program="book", quote=False)


def _workload():
    return build_workload(
        n_trials=CACHE_TRIALS,
        events_per_trial=CACHE_EVENTS,
        n_layers=CACHE_LAYERS,
        elts_per_layer=CACHE_ELTS,
        catalog_size=CACHE_CATALOG,
    )


def _fresh_program(workload) -> ReinsuranceProgram:
    """The benchmark program with every per-layer matrix cache dropped.

    The ELT objects are shared (they are the immutable inputs a real
    service would hold), but each cold request gets brand-new ``Layer``
    wrappers, so the dense matrices and the fused stack must be rebuilt —
    exactly what a cold cache costs.
    """
    return ReinsuranceProgram(
        [Layer(layer.elts, layer.terms, name=layer.name) for layer in workload.program.layers],
        name=workload.program.name,
    )


def _cold_request_seconds(workload) -> float:
    service = RiskService(EngineConfig(backend="vectorized"))
    service.register_program("book", _fresh_program(workload))
    service.register_yet("book", workload.yet)
    start = time.perf_counter()
    response = service.submit(REQUEST)
    seconds = time.perf_counter() - start
    assert response.cache.hit is False
    return seconds


@pytest.mark.benchmark(group="service-cache")
@pytest.mark.parametrize("path", ["cold", "warm"])
def test_service_cache_requests(benchmark, path):
    workload = _workload()
    if path == "cold":
        benchmark(lambda: _cold_request_seconds(workload))
    else:
        service = RiskService(EngineConfig(backend="vectorized"))
        service.register_workload("book", workload)
        service.submit(REQUEST)  # populate the cache
        benchmark(lambda: service.submit(REQUEST))
    benchmark.extra_info["n_layers"] = CACHE_LAYERS
    benchmark.extra_info["path"] = path


def _best_of(n_repeats: int, fn) -> float:
    best = float("inf")
    for _ in range(n_repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_warm_cached_speedup_at_16_layers():
    """Acceptance: a warm cached request >= 2x faster than a cold request."""
    workload = _workload()

    # Correctness cross-check first: cold, warm and a fresh-service rerun
    # must agree bit for bit — the cache may change latency, never results.
    service = RiskService(EngineConfig(backend="vectorized"))
    service.register_program("book", _fresh_program(workload))
    service.register_yet("book", workload.yet)
    cold_response = service.submit(REQUEST)
    warm_response = service.submit(REQUEST)
    assert cold_response.cache.hit is False
    assert warm_response.cache.hit is True
    np.testing.assert_array_equal(
        cold_response.result.ylt.losses, warm_response.result.ylt.losses
    )

    cold_seconds = _best_of(3, lambda: _cold_request_seconds(workload))
    warm_seconds = _best_of(5, lambda: service.submit(REQUEST))
    speedup = cold_seconds / warm_seconds
    record_benchmark(
        "service_cache",
        backend="vectorized",
        shape={
            "n_trials": CACHE_TRIALS,
            "events_per_trial": CACHE_EVENTS,
            "n_layers": CACHE_LAYERS,
            "elts_per_layer": CACHE_ELTS,
            "catalog_size": CACHE_CATALOG,
        },
        baseline_seconds=cold_seconds,
        candidate_seconds=warm_seconds,
        threshold=2.0,
        meta={
            "baseline": "cold request: lower plan + build matrices + fused stack",
            "candidate": "warm request: content-addressed PlanCache hit",
            "cache": service.cache_stats().summary(),
        },
    )
    assert speedup >= 2.0, (
        f"warm cached request is only {speedup:.2f}x faster than cold "
        f"({warm_seconds:.4f}s vs {cold_seconds:.4f}s)"
    )
