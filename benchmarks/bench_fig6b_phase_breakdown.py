"""Figure 6b — percentage of time per engine phase.

Paper observation: 78 % of the runtime is spent looking events up in the ELT
direct access tables; the remainder splits between fetching events from
memory, the financial-term calculations and the layer-term calculations.

Reproduction, two views attached to ``extra_info``:

* the *measured* phase breakdown of the instrumented sequential backend (a
  pure Python interpreter shifts the ratios — interpretation overhead inflates
  the arithmetic phases relative to a compiled implementation), and
* the *projected* breakdown of the analytical CPU cost model
  (:meth:`repro.core.projection.CPUCostModel.phase_fractions`), which is the
  series EXPERIMENTS.md compares against the paper's 78 % figure.
"""

import pytest

from repro.core.config import EngineConfig
from repro.core.engine import AggregateRiskEngine
from repro.core.phases import ALL_PHASES
from repro.core.projection import CPUCostModel
from repro.parallel.device import WorkloadShape
from repro.workloads.presets import PAPER_FULL_SCALE

from .conftest import build_workload

FULL_SCALE_SHAPE = WorkloadShape(
    n_trials=PAPER_FULL_SCALE.n_trials,
    events_per_trial=float(PAPER_FULL_SCALE.events_per_trial),
    n_elts=PAPER_FULL_SCALE.elts_per_layer,
    n_layers=PAPER_FULL_SCALE.n_layers,
)

BACKENDS = ("sequential", "vectorized")


@pytest.mark.benchmark(group="fig6b-phase-breakdown")
@pytest.mark.parametrize("backend", BACKENDS)
def test_fig6b_phase_breakdown(benchmark, backend):
    workload = build_workload()
    n_trials = 200 if backend == "sequential" else workload.yet.n_trials
    yet = workload.yet.slice_trials(0, n_trials)
    engine = AggregateRiskEngine(EngineConfig(backend=backend, record_phases=True,
                                              record_max_occurrence=False))

    result = benchmark.pedantic(
        lambda: engine.run(workload.program, yet),
        rounds=2,
        iterations=1,
        warmup_rounds=0,
    )

    breakdown = result.phase_breakdown
    assert breakdown is not None
    percentages = breakdown.percentages()
    assert set(percentages) == set(ALL_PHASES)

    projected = CPUCostModel().phase_fractions(FULL_SCALE_SHAPE)
    benchmark.extra_info["figure"] = "6b"
    benchmark.extra_info["backend"] = backend
    benchmark.extra_info["measured_percentages"] = {k: round(v, 2) for k, v in percentages.items()}
    benchmark.extra_info["projected_percentages"] = {
        k: round(100.0 * v, 2) for k, v in projected.items()
    }
    benchmark.extra_info["paper_elt_lookup_share"] = 78.0
    # The measured (interpreted Python) breakdown shifts weight towards the
    # arithmetic phases; the projected breakdown of the compiled-engine cost
    # model is the one that must reproduce the paper's "78 % in ELT lookups".
    assert sum(percentages.values()) == pytest.approx(100.0, abs=1e-6)
    assert max(projected, key=projected.get) == "elt_lookup"
    assert projected["elt_lookup"] == pytest.approx(0.78, abs=0.12)
