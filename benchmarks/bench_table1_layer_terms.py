"""Table I — the four layer terms and their semantics.

Table I is descriptive (it defines T_OccR, T_OccL, T_AggR and T_AggL); this
module regenerates the table's content programmatically, validates each
term's semantics against hand-computed values, and benchmarks the throughput
of the vectorised term-application kernels (the operations whose cost the
terms add to the analysis).
"""

import numpy as np
import pytest

from repro.financial.policies import apply_occurrence_terms, aggregate_terms_shortcut
from repro.financial.terms import LayerTerms

TABLE_I_ROWS = (
    ("T_OccR", "Occurrence Retention",
     "Retention or deductible of the insured for an individual occurrence loss"),
    ("T_OccL", "Occurrence Limit",
     "Limit or coverage the insurer will pay for occurrence losses in excess of the retention"),
    ("T_AggR", "Aggregate Retention",
     "Retention or deductible of the insured for an annual cumulative loss"),
    ("T_AggL", "Aggregate Limit",
     "Limit or coverage the insurer will pay for annual cumulative losses in excess of the "
     "aggregate retention"),
)


def test_table1_contents(capsys):
    """Print the regenerated Table I and check the notation round-trips."""
    terms = LayerTerms(
        occurrence_retention=1.0, occurrence_limit=2.0,
        aggregate_retention=3.0, aggregate_limit=4.0,
    )
    description = terms.describe()
    print(f"{'Notation':<10}{'Term':<24}Description")
    for notation, term, text in TABLE_I_ROWS:
        print(f"{notation:<10}{term:<24}{text}")
        assert notation in description
    captured = capsys.readouterr().out
    assert "Occurrence Retention" in captured


def test_table1_semantics_hand_checked():
    """Each term behaves exactly as Table I describes."""
    terms = LayerTerms(
        occurrence_retention=100.0, occurrence_limit=400.0,
        aggregate_retention=500.0, aggregate_limit=1000.0,
    )
    # Occurrence: the insured retains the first 100 of each occurrence and the
    # insurer pays at most 400 above it.
    assert terms.apply_occurrence(80.0) == 0.0
    assert terms.apply_occurrence(300.0) == 200.0
    assert terms.apply_occurrence(10_000.0) == 400.0
    # Aggregate: the insured retains the first 500 of the annual total and the
    # insurer pays at most 1000 above it.
    assert terms.apply_aggregate(400.0) == 0.0
    assert terms.apply_aggregate(1200.0) == 700.0
    assert terms.apply_aggregate(10_000.0) == 1000.0


@pytest.mark.benchmark(group="table1-term-kernels")
@pytest.mark.parametrize("kind", ["occurrence", "aggregate"])
def test_table1_term_kernel_throughput(benchmark, kind):
    rng = np.random.default_rng(1)
    losses = rng.gamma(2.0, 1e6, size=200_000)
    offsets = np.arange(0, 200_001, 100, dtype=np.int64)
    terms = LayerTerms(1e5, 5e6, 1e6, 5e7)

    if kind == "occurrence":
        benchmark(lambda: apply_occurrence_terms(losses, terms))
    else:
        benchmark(lambda: aggregate_terms_shortcut(losses, offsets, terms))
    benchmark.extra_info["table"] = "I"
    benchmark.extra_info["kernel"] = kind
    benchmark.extra_info["n_values"] = losses.size
