"""Distributed fleet execution: merge exactness and multi-worker wall time.

The fleet's pitch is the paper's map/reduce shape stretched across
processes: ship the plan once (digest-keyed), stream
:class:`~repro.core.results.PartialResult` blocks back over sockets, and
merge by pure column placement — so correctness is bit-identity, never
tolerance.  This harness pins that plus the wall-time claim:

* ``test_fleet_merge_bit_identical`` — a plain assertion (runs in the CI
  bench smoke) that a 4-worker, 8-shard fleet run over a mid-sized
  workload reproduces the monolithic run bit for bit;
* ``test_fleet_survives_worker_kill`` — kill one of two worker processes
  mid-run; the reassigned shards must still merge bit-identically (also
  kept on in CI);
* ``test_fleet_speedup_at_4_workers`` — the wall-time acceptance: four
  local worker processes price the 8-shard, 64-layer workload at least
  2.5x faster than one warm single-process run.  The measurement always
  emits ``BENCH_distributed.json`` (including ``environment.cpu_count``),
  then skips the assertion on hosts with fewer cores than workers — four
  processes on one core timeshare, they don't parallelise.  Deselected in
  CI like every timing-ratio gate; run locally to refresh the record.
"""

import os
import time

import numpy as np
import pytest

from repro.core.config import EngineConfig
from repro.core.engine import AggregateRiskEngine
from repro.core.plan import PlanBuilder
from repro.distributed import FleetEngine, WorkerProcess

from .conftest import build_workload
from .record import record_benchmark

FLEET_TRIALS = 8000
FLEET_EVENTS = 240
FLEET_LAYERS = 64
FLEET_ELTS = 4
FLEET_CATALOG = 20_000
N_SHARDS = 8
N_WORKERS = 4

#: Wall-time acceptance: 4 workers at least this much faster than 1 process.
SPEEDUP_THRESHOLD = 2.5


def _workload():
    return build_workload(
        n_trials=FLEET_TRIALS,
        events_per_trial=FLEET_EVENTS,
        n_layers=FLEET_LAYERS,
        elts_per_layer=FLEET_ELTS,
        catalog_size=FLEET_CATALOG,
    )


def _config() -> EngineConfig:
    return EngineConfig(backend="vectorized", trial_shards=N_SHARDS)


def _warm(workload) -> None:
    """Build the dense matrices once so runs measure execution, not lowering."""
    for layer in workload.program.layers:
        layer.loss_matrix().combined_net_losses()


def _best_of(n_repeats: int, fn) -> float:
    best = float("inf")
    for _ in range(n_repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_fleet_merge_bit_identical():
    """Acceptance: a 4-worker fleet merge reproduces the monolithic run exactly."""
    workload = build_workload(
        n_trials=2000,
        events_per_trial=40,
        n_layers=16,
        elts_per_layer=FLEET_ELTS,
        catalog_size=FLEET_CATALOG,
    )
    config = _config()
    engine = AggregateRiskEngine(config)
    monolithic = engine.run(workload.program, workload.yet)
    workers = [WorkerProcess(config=config) for _ in range(N_WORKERS)]
    try:
        for worker in workers:
            worker.start()
        fleet = engine.run_distributed(
            workload.program,
            workload.yet,
            workers=[worker.address for worker in workers],
            n_shards=N_SHARDS,
        )
    finally:
        for worker in workers:
            worker.stop()
    np.testing.assert_array_equal(fleet.ylt.losses, monolithic.ylt.losses)
    assert fleet.details["fleet"]["dead_workers"] == []
    assert sum(fleet.details["fleet"]["shards_per_worker"].values()) == N_SHARDS


def test_fleet_survives_worker_kill():
    """Acceptance: killing a worker mid-run still merges bit-identically."""
    workload = build_workload(
        n_trials=2000,
        events_per_trial=40,
        n_layers=16,
        elts_per_layer=FLEET_ELTS,
        catalog_size=FLEET_CATALOG,
    )
    config = _config()
    engine = AggregateRiskEngine(config)
    monolithic = engine.run(workload.program, workload.yet)
    with WorkerProcess(config=config) as survivor, WorkerProcess(
        config=config
    ) as victim:
        killed = []

        def kill_victim_once(partial):
            if not killed:
                killed.append(partial)
                victim.kill()

        fleet = engine.run_distributed(
            workload.program,
            workload.yet,
            workers=[survivor.address, victim.address],
            n_shards=N_SHARDS,
            timeout=30.0,
            on_partial=kill_victim_once,
        )
    np.testing.assert_array_equal(fleet.ylt.losses, monolithic.ylt.losses)


def test_fleet_speedup_at_4_workers():
    """Acceptance: 4 worker processes >= 2.5x one process on the 64-layer run.

    Both sides are warm: the single-process baseline executes a prebuilt
    plan (no lowering in the loop) and the fleet is timed only after a
    cold run has shipped the program and YET into every worker's
    digest-keyed caches.  The record is written *before* the core-count
    skip so 1-core hosts still contribute an honest trajectory point.
    """
    workload = _workload()
    _warm(workload)
    config = _config()
    engine = AggregateRiskEngine(config)
    plan = PlanBuilder.from_program(workload.program, workload.yet)
    engine.run_plan(plan)
    wall_single = _best_of(3, lambda: engine.run_plan(plan))

    workers = [WorkerProcess(config=config) for _ in range(N_WORKERS)]
    try:
        for worker in workers:
            worker.start()
        with FleetEngine(
            [worker.address for worker in workers], config=config
        ) as fleet:
            cold_start = time.perf_counter()
            cold = fleet.run(workload.program, workload.yet, n_shards=N_SHARDS)
            wall_cold = time.perf_counter() - cold_start
            wall_fleet = _best_of(
                3,
                lambda: fleet.run(workload.program, workload.yet, n_shards=N_SHARDS),
            )
    finally:
        for worker in workers:
            worker.stop()

    mono = engine.run_plan(plan)
    np.testing.assert_array_equal(cold.ylt.losses, mono.ylt.losses)

    record_benchmark(
        "distributed",
        backend="vectorized",
        shape={
            "n_trials": FLEET_TRIALS,
            "events_per_trial": FLEET_EVENTS,
            "n_layers": FLEET_LAYERS,
            "elts_per_layer": FLEET_ELTS,
            "catalog_size": FLEET_CATALOG,
            "n_shards": N_SHARDS,
            "n_workers": N_WORKERS,
        },
        baseline_seconds=wall_single,
        candidate_seconds=wall_fleet,
        threshold=SPEEDUP_THRESHOLD,
        meta={
            "baseline": "warm single-process vectorized run_plan",
            "candidate": f"warm {N_WORKERS}-worker fleet over {N_SHARDS} shards",
            "cold_fleet_seconds": round(wall_cold, 4),
            "warm_over_cold_speedup": round(wall_cold / wall_fleet, 2),
            "note": (
                "speedup gate asserted only on hosts with >= n_workers cores; "
                "fewer cores timeshare the worker processes"
            ),
        },
    )

    cores = os.cpu_count() or 1
    if cores < N_WORKERS:
        pytest.skip(
            f"fleet speedup gate needs >= {N_WORKERS} cores; host has {cores}"
        )
    speedup = wall_single / wall_fleet
    assert speedup >= SPEEDUP_THRESHOLD, (
        f"{N_WORKERS}-worker fleet is only {speedup:.2f}x the single-process "
        f"wall ({wall_fleet:.3f}s vs {wall_single:.3f}s; "
        f"threshold {SPEEDUP_THRESHOLD}x)"
    )
