"""Native C fused-kernel tier vs the vectorized NumPy backend.

The native backend exists to retire interpreted overhead from the hot path:
one C pass per (row, trial) cell fuses the stacked gather, the occurrence
terms and the trial-local reductions, where the NumPy pipeline materialises
and re-reads an ``(n_rows, n_events)`` intermediate several times.  This
harness pins that down on the 64-layer shared-memory benchmark shape (800
trials x 60 events x 64 layers over a 160k catalog — the same shape
``BENCH_plan_sharedmem.json`` records, chosen because the stacked gather
dominates there):

* ``test_native_bit_identity`` — the correctness half, kept on in CI: the
  native backend's year losses and maxima are bit-identical to the
  vectorized backend's for float64 — monolithic and trial-sharded — and the
  float32 tier is bit-identical to the float64 pipeline run on the
  f32-quantised stack (its defining contract) while agreeing with the full-
  precision run to well under 1e-3 relative (stack quantisation is ~6e-8
  relative per value; trials clipped right at a term threshold amplify it);
* ``test_native_kernel_speedup`` — the acceptance gate (deselected in CI
  like the other timing gates): the native plan pass is at least 2x faster
  than the vectorized pass on the same warm plan.  Emits
  ``BENCH_native_kernels.json``.

Both halves skip cleanly on machines without a C compiler — there the
backend runs its NumPy fallback, which is the *other* side of these
comparisons.
"""

import time

import numpy as np
import pytest

from repro.core.config import EngineConfig
from repro.core.engine import AggregateRiskEngine
from repro.core.native.build import find_compiler
from repro.core.plan import PlanBuilder

from .bench_plan_sharedmem import SHM_CATALOG, SHM_ELTS, SHM_EVENTS, SHM_LAYERS, SHM_TRIALS
from .conftest import build_workload
from .record import record_benchmark

requires_compiler = pytest.mark.skipif(
    find_compiler() is None, reason="no C compiler: the native tier falls back to NumPy"
)

SPEEDUP_THRESHOLD = 2.0


def _workload():
    return build_workload(
        n_trials=SHM_TRIALS,
        events_per_trial=SHM_EVENTS,
        n_layers=SHM_LAYERS,
        elts_per_layer=SHM_ELTS,
        catalog_size=SHM_CATALOG,
    )


def _engine(backend: str, **overrides) -> AggregateRiskEngine:
    return AggregateRiskEngine(EngineConfig(backend=backend, **overrides))


def _best_of(n: int, fn) -> float:
    best = float("inf")
    for _ in range(n):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


@requires_compiler
def test_native_bit_identity():
    workload = _workload()
    plan = PlanBuilder.from_program(workload.program, workload.yet)
    reference = _engine("vectorized").run_plan(plan)

    native = _engine("native").run_plan(plan)
    assert native.details["native_kernel"] is True
    assert np.array_equal(reference.ylt.losses, native.ylt.losses)
    assert np.array_equal(
        reference.ylt.max_occurrence_losses, native.ylt.max_occurrence_losses
    )

    # Trial-sharded execution merges exactly (the segment reductions are
    # trial-local in C exactly as in NumPy).
    sharded = _engine("native", trial_shards=4).run_plan(plan)
    assert sharded.details["trial_shards"] == 4
    assert np.array_equal(reference.ylt.losses, sharded.ylt.losses)

    # float32 contract: bit-identical to the float64 pipeline on the
    # f32-quantised stack; ~1e-7 relative to the full-precision run.
    f32 = _engine("native", dtype="float32").run_plan(plan)
    quantised = plan.stack().astype(np.float32).astype(np.float64)
    oracle = _engine("vectorized").run_plan(
        PlanBuilder.from_stack(
            quantised, plan.terms, workload.yet, row_names=plan.row_names
        )
    )
    assert np.array_equal(oracle.ylt.losses, f32.ylt.losses)
    # Against the full-precision run the only error is stack quantisation
    # (~6e-8 relative per value); the occurrence/aggregate clips amplify it
    # for the rare trial sitting exactly at a term threshold, hence the
    # looser bound here.
    np.testing.assert_allclose(
        reference.ylt.losses, f32.ylt.losses, rtol=1e-3, atol=1e-6
    )


@requires_compiler
def test_native_kernel_speedup():
    workload = _workload()
    plan = PlanBuilder.from_program(workload.program, workload.yet)
    vectorized = _engine("vectorized")
    native = _engine("native")
    native_f32 = _engine("native", dtype="float32")

    # Warm runs: build + cache the stack (and its f32 quantisation) on the
    # plan, compile/load the C kernels, and cross-check bits while at it.
    baseline_result = vectorized.run_plan(plan)
    native_result = native.run_plan(plan)
    native_f32.run_plan(plan)
    assert native_result.details["native_kernel"] is True
    assert np.array_equal(baseline_result.ylt.losses, native_result.ylt.losses)

    baseline = _best_of(3, lambda: vectorized.run_plan(plan))
    candidate = _best_of(3, lambda: native.run_plan(plan))
    candidate_f32 = _best_of(3, lambda: native_f32.run_plan(plan))

    speedup = baseline / candidate
    record_benchmark(
        "native_kernels",
        backend="native",
        shape={
            "n_trials": SHM_TRIALS,
            "events_per_trial": SHM_EVENTS,
            "n_layers": SHM_LAYERS,
            "elts_per_layer": SHM_ELTS,
            "catalog_size": SHM_CATALOG,
        },
        baseline_seconds=baseline,
        candidate_seconds=candidate,
        threshold=SPEEDUP_THRESHOLD,
        meta={
            "baseline": "vectorized NumPy plan pass (warm plan, cached stack)",
            "candidate": "native C fused kernel (float64)",
            "native_float32_seconds": candidate_f32,
            "native_float32_speedup": baseline / candidate_f32,
            "native_openmp": native_result.details.get("native_openmp"),
            "native_threads": native_result.details.get("native_threads"),
        },
    )
    assert speedup >= SPEEDUP_THRESHOLD, (
        f"native kernel is only {speedup:.2f}x the vectorized pass "
        f"({candidate * 1e3:.1f}ms vs {baseline * 1e3:.1f}ms)"
    )
