"""Delta-aware result caching: warm append-trials requests vs cold runs.

The result cache turns the dominant serving pattern of a growing event set —
"the YET gained this quarter's trials, re-price the book" — into a delta:
the cached accumulator keeps the old trials' year-loss columns verbatim, and
only the appended trial range goes through the kernels
(:meth:`~repro.core.plan.ExecutionPlan.restrict` + the partial-result merge
algebra).  This harness measures what that buys when the append is 5% of the
table:

* ``test_delta_cache_requests`` — pytest-benchmark measurements of the cold
  path (fresh service, whole extended YET through the kernels) and the warm
  path (service that has priced the base YET answers the extended one);
* ``test_append_delta_bit_identity`` — the correctness half, kept on in CI:
  the warm delta result equals a cold monolithic run bit for bit;
* ``test_warm_append_delta_speedup`` — a plain assertion that the warm
  append-trials delta is at least 10x faster than the cold run, the
  acceptance criterion of the result-cache work.  Emits
  ``BENCH_delta_cache.json``.
"""

import time

import numpy as np
import pytest

from repro.core.config import EngineConfig
from repro.service import AnalysisRequest, RiskService
from repro.yet.table import YearEventTable

from .conftest import build_workload
from .record import record_benchmark

DELTA_TRIALS = 4000
DELTA_APPEND = 100
DELTA_EVENTS = 80
DELTA_LAYERS = 4
DELTA_ELTS = 8
DELTA_CATALOG = 30_000

REQUEST = AnalysisRequest(kind="run", program="book", quote=False)


def _workload():
    return build_workload(
        n_trials=DELTA_TRIALS,
        events_per_trial=DELTA_EVENTS,
        n_layers=DELTA_LAYERS,
        elts_per_layer=DELTA_ELTS,
        catalog_size=DELTA_CATALOG,
    )


def _append_trials(yet: YearEventTable, n_extra: int, seed: int = 29) -> YearEventTable:
    """A YET whose first ``yet.n_trials`` trials are byte-identical to ``yet``."""
    rng = np.random.default_rng(seed)
    lengths = rng.integers(
        max(int(yet.mean_events_per_trial * 0.5), 1),
        int(yet.mean_events_per_trial * 1.5) + 2,
        size=n_extra,
    )
    extra_ids = rng.integers(0, yet.catalog_size, size=int(lengths.sum()))
    extra_offsets = np.zeros(n_extra + 1, dtype=np.int64)
    np.cumsum(lengths, out=extra_offsets[1:])
    event_ids = np.concatenate([yet.event_ids, extra_ids])
    trial_offsets = np.concatenate(
        [yet.trial_offsets, extra_offsets[1:] + yet.n_occurrences]
    )
    timestamps = None
    if yet.timestamps is not None:
        extra_ts = np.sort(rng.random(int(lengths.sum())))
        timestamps = np.concatenate([yet.timestamps, extra_ts])
    return YearEventTable(event_ids, trial_offsets, yet.catalog_size, timestamps)


def _cold_service(workload, extended_yet) -> RiskService:
    service = RiskService(EngineConfig(backend="vectorized"))
    service.register_program("book", workload.program)
    service.register_yet("book", extended_yet)
    return service


def _warm_service(workload) -> RiskService:
    """A result-caching service that has already priced the base YET."""
    service = RiskService(EngineConfig(backend="vectorized"), result_cache=True)
    service.register_program("book", workload.program)
    service.register_yet("book", workload.yet)
    response = service.submit(REQUEST)
    assert response.result_cache["status"] == "miss"
    return service


@pytest.mark.benchmark(group="delta-cache")
@pytest.mark.parametrize("path", ["cold", "warm-append"])
def test_delta_cache_requests(benchmark, path):
    workload = _workload()
    extended_yet = _append_trials(workload.yet, DELTA_APPEND)
    if path == "cold":
        service = _cold_service(workload, extended_yet)
        benchmark(lambda: service.submit(REQUEST))
    else:
        service = _warm_service(workload)

        # Each round re-primes with the base YET so the final submit is an
        # append delta, never an exact hit (the round includes the priming).
        def append_round():
            service.result_cache.clear()
            service.register_yet("book", workload.yet)
            service.submit(REQUEST)
            service.register_yet("book", extended_yet)
            return service.submit(REQUEST)

        benchmark(append_round)
    benchmark.extra_info["path"] = path
    benchmark.extra_info["append_trials"] = DELTA_APPEND


def test_append_delta_bit_identity():
    """Correctness half of the gate (kept on in CI): warm delta == cold run."""
    workload = _workload()
    extended_yet = _append_trials(workload.yet, DELTA_APPEND)

    warm = _warm_service(workload)
    warm.register_yet("book", extended_yet)
    delta = warm.submit(REQUEST)
    assert delta.result_cache["status"] == "append"
    assert delta.result_cache["repriced_trials"] == DELTA_APPEND

    cold = _cold_service(workload, extended_yet).submit(REQUEST)
    np.testing.assert_array_equal(delta.result.ylt.losses, cold.result.ylt.losses)
    warm_occ = delta.result.ylt.max_occurrence_losses
    cold_occ = cold.result.ylt.max_occurrence_losses
    assert (warm_occ is None) == (cold_occ is None)
    if warm_occ is not None:
        np.testing.assert_array_equal(warm_occ, cold_occ)


def _best_of(n_repeats: int, fn) -> float:
    best = float("inf")
    for _ in range(n_repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_warm_append_delta_speedup():
    """Acceptance: the warm append-trials delta >= 10x over the cold run."""
    workload = _workload()
    extended_yet = _append_trials(workload.yet, DELTA_APPEND)

    cold_service = _cold_service(workload, extended_yet)
    cold_service.submit(REQUEST)  # warm the *plan* cache: isolate the kernel pass
    cold_seconds = _best_of(3, lambda: cold_service.submit(REQUEST))

    warm = _warm_service(workload)
    # Each repeat re-primes with the base YET so the measured submit is an
    # append delta every time, never an exact hit on the extended entry.
    warm_seconds = float("inf")
    for _ in range(5):
        warm.result_cache.clear()
        warm.register_yet("book", workload.yet)
        warm.submit(REQUEST)
        warm.register_yet("book", extended_yet)
        start = time.perf_counter()
        response = warm.submit(REQUEST)
        warm_seconds = min(warm_seconds, time.perf_counter() - start)
        assert response.result_cache["status"] == "append"

    speedup = cold_seconds / warm_seconds
    record_benchmark(
        "delta_cache",
        backend="vectorized",
        shape={
            "n_trials": DELTA_TRIALS + DELTA_APPEND,
            "append_trials": DELTA_APPEND,
            "events_per_trial": DELTA_EVENTS,
            "n_layers": DELTA_LAYERS,
            "elts_per_layer": DELTA_ELTS,
            "catalog_size": DELTA_CATALOG,
        },
        baseline_seconds=cold_seconds,
        candidate_seconds=warm_seconds,
        threshold=10.0,
        meta={
            "baseline": "cold run: whole extended YET through the kernels (warm plan cache)",
            "candidate": "warm append delta: only the appended range priced, merged exactly",
            "result_cache": warm.result_cache.stats.summary(),
        },
    )
    assert speedup >= 10.0, (
        f"warm append delta is only {speedup:.2f}x faster than cold "
        f"({warm_seconds:.4f}s vs {cold_seconds:.4f}s)"
    )
