"""Figure 2b — sequential analysis time vs number of trials.

Paper configuration: 1 layer, 15 ELTs, 1000 events per trial, trials varied
from 200,000 to 1,000,000; runtime grows linearly in the trial count.

Scaled reproduction: trials 2,000 .. 10,000 (the same 5-point 1:5 span), 100
events per trial, 15 ELTs, vectorized backend.  The YET for every point is a
trial-prefix slice of one 10,000-trial table.
"""

import pytest

from repro.core.config import EngineConfig
from repro.core.engine import AggregateRiskEngine

from .conftest import build_workload

TRIAL_COUNTS = (2000, 4000, 6000, 8000, 10_000)


@pytest.mark.benchmark(group="fig2b-trials")
@pytest.mark.parametrize("n_trials", TRIAL_COUNTS)
def test_fig2b_sequential_time_vs_trials(benchmark, n_trials):
    workload = build_workload(n_trials=max(TRIAL_COUNTS))
    yet = workload.yet.slice_trials(0, n_trials)
    engine = AggregateRiskEngine(EngineConfig(backend="vectorized"))

    result = benchmark(lambda: engine.run(workload.program, yet))

    benchmark.extra_info["figure"] = "2b"
    benchmark.extra_info["n_trials"] = n_trials
    benchmark.extra_info["events_per_trial"] = yet.mean_events_per_trial
    benchmark.extra_info["elts_per_layer"] = workload.program[0].n_elts
    assert result.ylt.n_trials == n_trials
