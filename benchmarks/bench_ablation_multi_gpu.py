"""Ablation — multi-GPU projection for full-portfolio analyses.

Section IV: "Aggregate analysis using 50K trials on complete portfolios
consisting of 5000 contracts can be completed in around 24 hours ... If a
complete portfolio analysis is required on a 1M trial basis then a multi-GPU
hardware platform would likely be required."

This ablation projects the runtime of a 5000-layer portfolio at 1M trials on
1–16 simulated devices (trials split evenly, fixed host-side merge overhead
per device) and attaches the projections to ``extra_info``.  The benchmark
itself times the projection sweep (a pure cost-model evaluation, so it is
cheap) — the quantity of interest is the projected series, not the wall time.
"""

import pytest

from repro.parallel.device import KernelConfig, KernelCostModel, WorkloadShape, multi_gpu_estimate

PORTFOLIO_SHAPE = WorkloadShape(
    n_trials=1_000_000, events_per_trial=1000.0, n_elts=15, n_layers=5000
)
CONFIG = KernelConfig(threads_per_block=64, chunk_size=4, optimised=True)
GPU_COUNTS = (1, 2, 4, 8, 16)


@pytest.mark.benchmark(group="ablation-multi-gpu")
@pytest.mark.parametrize("n_gpus", GPU_COUNTS)
def test_ablation_multi_gpu_portfolio_projection(benchmark, n_gpus):
    model = KernelCostModel()

    projected = benchmark(lambda: multi_gpu_estimate(model, PORTFOLIO_SHAPE, CONFIG, n_gpus))

    benchmark.extra_info["ablation"] = "multi-gpu"
    benchmark.extra_info["n_gpus"] = n_gpus
    benchmark.extra_info["portfolio_layers"] = PORTFOLIO_SHAPE.n_layers
    benchmark.extra_info["projected_hours"] = projected / 3600.0
    # One device needs tens of hours for the full portfolio at 1M trials;
    # the multi-GPU platform the paper calls for brings it into a working day.
    if n_gpus == 1:
        assert projected > 24 * 3600 * 0.5
    if n_gpus >= 8:
        assert projected < multi_gpu_estimate(model, PORTFOLIO_SHAPE, CONFIG, 1) / 4
