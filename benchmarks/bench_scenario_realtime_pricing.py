"""Scenario — real-time pricing with 50 K trials (Section IV discussion).

"In many applications 50K trials may be sufficient in which case sub one
second response time can be achieved."  The scenario: an underwriter, on the
phone, re-evaluates one layer under alternative contractual terms; each
re-evaluation is one 50 K-trial aggregate analysis of a single layer.

Reproduction: a 50,000-trial x 100-event x 15-ELT workload analysed by the
chunked backend (the memory-frugal single-process backend), plus the device
model's projection of the same trial count at the paper's 1000-events-per-
trial scale.
"""

import pytest

from repro.core.config import EngineConfig
from repro.core.engine import AggregateRiskEngine
from repro.core.gpu_sim import GPUSimulatedEngine
from repro.parallel.device import WorkloadShape

from .conftest import build_workload

N_TRIALS = 50_000


@pytest.mark.benchmark(group="scenario-realtime-pricing")
def test_scenario_realtime_pricing_50k_trials(benchmark):
    workload = build_workload(n_trials=N_TRIALS, events_per_trial=100, elts_per_layer=15)
    engine = AggregateRiskEngine(EngineConfig(
        backend="chunked",
        chunk_events=65_536,
        record_max_occurrence=False,
    ))

    result = benchmark.pedantic(
        lambda: engine.run(workload.program, workload.yet),
        rounds=3,
        iterations=1,
        warmup_rounds=1,
    )

    modeled = GPUSimulatedEngine(EngineConfig(
        backend="gpu", gpu_optimised=True, gpu_chunk_size=4, threads_per_block=64
    )).estimate_only(WorkloadShape(N_TRIALS, 1000.0, 15, 1))

    benchmark.extra_info["scenario"] = "realtime-pricing"
    benchmark.extra_info["n_trials"] = N_TRIALS
    benchmark.extra_info["modeled_gpu_seconds_full_events"] = modeled.seconds
    benchmark.extra_info["paper_claim"] = "sub one second response time at 50K trials"
    # The paper's sub-second claim holds for the modelled device ...
    assert modeled.seconds < 1.5
    # ... and the scaled Python execution stays interactive.
    assert result.ylt.n_trials == N_TRIALS
