"""Machine-readable benchmark records.

Every headline benchmark writes a ``BENCH_<name>.json`` file next to the
repository root (override with the ``ARE_BENCH_DIR`` environment variable)
so the performance trajectory is tracked across PRs instead of living only
in log output.  CI uploads the files as build artifacts.

The record schema is deliberately flat and stable::

    {
      "name": "batch_layers",
      "backend": "vectorized",
      "shape": {"n_trials": 800, "n_layers": 16, ...},
      "baseline_seconds": 0.123,     # the slower / reference configuration
      "candidate_seconds": 0.045,    # the optimised configuration
      "speedup": 2.73,
      "threshold": 1.5,              # the acceptance criterion asserted on
      "meta": {...},                 # free-form benchmark specifics
      "python": "3.11.7",
      "recorded_at": "2026-07-30T12:34:56+00:00"
    }

Every record's ``meta`` additionally carries an ``environment`` block —
``cpu_count``, ``platform``, ``machine`` and (when a C compiler is on
``PATH``) the ``compiler`` version line — so perf trajectories remain
comparable across the machines that produced them.  Benchmark-specific
``meta`` keys are merged over it and win on collision.

Use :func:`record_benchmark` from a benchmark body after measuring::

    record_benchmark(
        "batch_layers",
        backend="vectorized",
        shape={"n_trials": 800, "n_layers": 16},
        baseline_seconds=perlayer, candidate_seconds=fused,
        threshold=1.5,
    )
"""

from __future__ import annotations

import datetime as _dt
import json
import os
import platform
from pathlib import Path
from typing import Any, Mapping

__all__ = ["bench_output_dir", "environment_meta", "record_benchmark"]

#: Environment variable overriding where BENCH_*.json files are written.
ENV_BENCH_DIR = "ARE_BENCH_DIR"


def bench_output_dir() -> Path:
    """Directory BENCH_*.json records are written to (repo root by default)."""
    override = os.environ.get(ENV_BENCH_DIR)
    if override:
        return Path(override)
    # benchmarks/record.py lives one level below the repository root.
    return Path(__file__).resolve().parent.parent


def environment_meta() -> dict:
    """Provenance of the machine a benchmark ran on (``meta["environment"]``)."""
    environment: dict = {
        "cpu_count": os.cpu_count(),
        "platform": platform.platform(),
        "machine": platform.machine(),
    }
    try:
        from repro.core.native.build import compiler_version, find_compiler

        cc = find_compiler()
        if cc is not None:
            environment["compiler"] = compiler_version(cc)
    except Exception:  # pragma: no cover - provenance must never fail a bench
        pass
    return environment


def record_benchmark(
    name: str,
    *,
    backend: str,
    shape: Mapping[str, Any],
    baseline_seconds: float,
    candidate_seconds: float,
    threshold: float | None = None,
    meta: Mapping[str, Any] | None = None,
) -> Path:
    """Write ``BENCH_<name>.json`` and return its path.

    ``baseline_seconds`` is the reference configuration's wall time and
    ``candidate_seconds`` the optimised configuration's; ``speedup`` is
    recorded as their ratio.  ``threshold`` documents the acceptance
    criterion the benchmark asserts (``None`` for purely informational
    records).
    """
    if not name or any(ch in name for ch in "/\\"):
        raise ValueError(f"invalid benchmark name {name!r}")
    if baseline_seconds <= 0 or candidate_seconds <= 0:
        raise ValueError("benchmark timings must be positive")

    record = {
        "name": name,
        "backend": backend,
        "shape": dict(shape),
        "baseline_seconds": float(baseline_seconds),
        "candidate_seconds": float(candidate_seconds),
        "speedup": float(baseline_seconds / candidate_seconds),
        "threshold": float(threshold) if threshold is not None else None,
        "meta": {"environment": environment_meta(), **(dict(meta) if meta else {})},
        "python": platform.python_version(),
        "recorded_at": _dt.datetime.now(_dt.timezone.utc).isoformat(timespec="seconds"),
    }
    directory = bench_output_dir()
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"BENCH_{name}.json"
    path.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
    return path
