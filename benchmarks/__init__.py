"""Benchmark harness package.

The package marker lets the benchmark modules import shared workload
builders from ``.conftest`` when the harness is run from the repo root
(``pytest benchmarks/ --benchmark-only``).
"""
