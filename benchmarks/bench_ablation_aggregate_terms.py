"""Ablation — aggregate-term application: full cumulative pass vs shortcut.

Lines 12–19 of the paper's basic algorithm apply the aggregate terms to every
prefix sum of the trial's occurrence losses and then sum the differences.
Because the clipped prefix differences telescope, the year loss equals a
single clip of the trial total — the shortcut the optimised backends use.
This ablation quantifies the cost of the literal cumulative pass relative to
the shortcut (both produce identical Year Loss Tables; equivalence is enforced
by the integration and property tests).
"""

import pytest

from repro.core.config import EngineConfig
from repro.core.engine import AggregateRiskEngine

VARIANTS = {
    "shortcut": True,
    "cumulative_pass": False,
}


@pytest.mark.benchmark(group="ablation-aggregate-terms")
@pytest.mark.parametrize("variant", list(VARIANTS))
def test_ablation_aggregate_term_application(benchmark, baseline_workload, variant):
    engine = AggregateRiskEngine(EngineConfig(
        backend="vectorized",
        use_aggregate_shortcut=VARIANTS[variant],
        record_max_occurrence=False,
    ))

    result = benchmark(lambda: engine.run(baseline_workload.program, baseline_workload.yet))

    benchmark.extra_info["ablation"] = "aggregate-terms"
    benchmark.extra_info["variant"] = variant
    benchmark.extra_info["n_trials"] = baseline_workload.yet.n_trials
    assert result.ylt.n_trials == baseline_workload.yet.n_trials
