"""Figure 4 — basic GPU kernel: execution time vs threads per CUDA block.

Paper configuration: basic (global-memory) CUDA kernel, 1 million trials x
1000 events x 15 ELTs on a Tesla C2075, threads per block varied 128..640; at
least 128 threads per block are needed, the best time is at ~256, and beyond
that improvements diminish.

Reproduction: the ``gpu`` backend executes the kernel functionally with NumPy
on a scaled workload (that execution is what the benchmark times) and the
:class:`~repro.parallel.device.SimulatedGPU` cost model projects the kernel
time of the paper's full-scale launch for each threads-per-block value; the
projection is attached to ``extra_info["modeled_full_scale_seconds"]`` and is
the series EXPERIMENTS.md compares against the paper's figure.
"""

import pytest

from repro.core.config import EngineConfig
from repro.core.engine import AggregateRiskEngine
from repro.core.gpu_sim import GPUSimulatedEngine
from repro.parallel.device import WorkloadShape
from repro.workloads.presets import PAPER_FULL_SCALE

THREADS_PER_BLOCK = (128, 256, 384, 512, 640)

FULL_SCALE_SHAPE = WorkloadShape(
    n_trials=PAPER_FULL_SCALE.n_trials,
    events_per_trial=float(PAPER_FULL_SCALE.events_per_trial),
    n_elts=PAPER_FULL_SCALE.elts_per_layer,
    n_layers=PAPER_FULL_SCALE.n_layers,
)


@pytest.mark.benchmark(group="fig4-gpu-threads-per-block")
@pytest.mark.parametrize("threads_per_block", THREADS_PER_BLOCK)
def test_fig4_basic_gpu_time_vs_threads_per_block(benchmark, baseline_workload, threads_per_block):
    config = EngineConfig(
        backend="gpu",
        threads_per_block=threads_per_block,
        gpu_optimised=False,
        record_max_occurrence=False,
    )
    engine = AggregateRiskEngine(config)

    result = benchmark(lambda: engine.run(baseline_workload.program, baseline_workload.yet))

    modeled = GPUSimulatedEngine(config).estimate_only(FULL_SCALE_SHAPE)
    benchmark.extra_info["figure"] = "4"
    benchmark.extra_info["threads_per_block"] = threads_per_block
    benchmark.extra_info["modeled_full_scale_seconds"] = modeled.seconds
    benchmark.extra_info["occupancy"] = modeled.occupancy
    benchmark.extra_info["paper_reference"] = "38.47 s at the best configuration"
    assert result.modeled_seconds is not None
