"""Fused multi-layer batch path vs the per-layer loop.

The paper's headline results (Table 1, Fig. 2a) are about scaling the
aggregate analysis across many layers; this harness measures what the fused
``(n_layers, catalog_size)`` stacked gather buys over re-gathering the YET
against each layer's dense matrix separately.  Two kinds of measurements:

* ``test_batch_layers_*`` — pytest-benchmark sweeps of the vectorized and
  chunked backends over a widening layer axis, fused vs per-layer;
* ``test_fused_speedup_at_16_layers`` — a plain assertion (runs without
  ``--benchmark-only``) that the fused vectorized path is at least 1.5x
  faster than the per-layer loop at 16 layers, the acceptance criterion of
  the fused-kernel work.
"""

import time

import numpy as np
import pytest

from repro.core.config import EngineConfig

from .conftest import build_workload, run_engine
from .record import record_benchmark

LAYER_SWEEP = (4, 16, 32)

#: Smaller trial axis than the main sweeps: the layer axis is what grows here.
BATCH_TRIALS = 800
BATCH_EVENTS = 60
BATCH_ELTS = 8
BATCH_CATALOG = 20_000


def _workload(n_layers: int):
    return build_workload(
        n_trials=BATCH_TRIALS,
        events_per_trial=BATCH_EVENTS,
        n_layers=n_layers,
        elts_per_layer=BATCH_ELTS,
        catalog_size=BATCH_CATALOG,
    )


def _prime(workload) -> None:
    """Materialise the per-layer matrix caches so only pricing is measured."""
    for layer in workload.program.layers:
        layer.loss_matrix()
        layer.loss_matrix().combined_net_losses()


@pytest.mark.benchmark(group="batch-layers-vectorized")
@pytest.mark.parametrize("fused", [False, True], ids=["per-layer", "fused"])
@pytest.mark.parametrize("n_layers", LAYER_SWEEP)
def test_batch_layers_vectorized(benchmark, n_layers, fused):
    workload = _workload(n_layers)
    _prime(workload)
    config = EngineConfig(backend="vectorized", fused_layers=fused)
    result = benchmark(lambda: run_engine(workload, config))
    benchmark.extra_info["n_layers"] = n_layers
    benchmark.extra_info["fused"] = fused
    benchmark.extra_info["trials_per_second"] = result.trials_per_second


@pytest.mark.benchmark(group="batch-layers-chunked")
@pytest.mark.parametrize("fused", [False, True], ids=["per-layer", "fused"])
@pytest.mark.parametrize("n_layers", (4, 16))
def test_batch_layers_chunked(benchmark, n_layers, fused):
    workload = _workload(n_layers)
    _prime(workload)
    config = EngineConfig(backend="chunked", fused_layers=fused, chunk_events=8192)
    result = benchmark(lambda: run_engine(workload, config))
    benchmark.extra_info["n_layers"] = n_layers
    benchmark.extra_info["fused"] = fused
    benchmark.extra_info["trials_per_second"] = result.trials_per_second


def _best_of(n_repeats: int, fn) -> float:
    best = float("inf")
    for _ in range(n_repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_fused_speedup_at_16_layers():
    """Acceptance: fused vectorized path >= 1.5x the per-layer loop at 16 layers."""
    workload = _workload(16)
    _prime(workload)
    fused_config = EngineConfig(backend="vectorized", fused_layers=True)
    perlayer_config = EngineConfig(backend="vectorized", fused_layers=False)

    # Warm-up (and a correctness cross-check while we are at it).
    fused_result = run_engine(workload, fused_config)
    perlayer_result = run_engine(workload, perlayer_config)
    np.testing.assert_allclose(
        fused_result.ylt.losses, perlayer_result.ylt.losses, rtol=1e-9
    )

    fused_seconds = _best_of(5, lambda: run_engine(workload, fused_config))
    perlayer_seconds = _best_of(5, lambda: run_engine(workload, perlayer_config))
    speedup = perlayer_seconds / fused_seconds
    record_benchmark(
        "batch_layers",
        backend="vectorized",
        shape={
            "n_trials": BATCH_TRIALS,
            "events_per_trial": BATCH_EVENTS,
            "n_layers": 16,
            "elts_per_layer": BATCH_ELTS,
            "catalog_size": BATCH_CATALOG,
        },
        baseline_seconds=perlayer_seconds,
        candidate_seconds=fused_seconds,
        threshold=1.5,
        meta={"baseline": "per-layer loop", "candidate": "fused stacked gather"},
    )
    print(
        f"\n16 layers x {BATCH_TRIALS} trials: per-layer {perlayer_seconds * 1e3:.1f} ms, "
        f"fused {fused_seconds * 1e3:.1f} ms -> {speedup:.2f}x"
    )
    assert speedup >= 1.5, (
        f"fused path only {speedup:.2f}x faster than per-layer at 16 layers "
        f"(expected >= 1.5x)"
    )
