"""Shared-memory vs pickling transport of the multicore plan scheduler.

The multicore backend's plan scheduler publishes the fused loss stack and
the YET columns through :class:`~repro.parallel.shared_memory.SharedArray`
segments, so workers *attach* zero-copy views; the legacy transport pickles
those arrays once per worker (``EngineConfig.shared_memory="off"``).  This
harness measures what the zero-copy hand-off buys on a portable
(non-``fork``) start method, where the pickling cost is actually paid.

Shape: the trial/event axes of ``bench_batch_layers`` (800 trials x 60
events) under a much wider row axis (64 layers) and a catalog grown toward
the paper's 2-million-event scale (160k entries), because the transported
payload — the ``n_rows x catalog_size`` stack, ~80 MB here — is exactly the
quantity the two transports differ on.  ELTs per layer are kept low: they
only affect stack *construction*, which both transports share.

Measurements:

* ``test_sharedmem_vs_pickle_transport`` — pytest-benchmark pair over the
  two transports (runs under ``--benchmark-only``);
* ``test_sharedmem_speedup_at_8_workers`` — a plain assertion (runs without
  ``--benchmark-only``) that the shared-memory transport is at least 1.3x
  faster than the pickling transport at 8 workers, recorded in
  ``BENCH_plan_sharedmem.json``.  Correctness is cross-checked first: both
  transports must produce bit-identical Year Loss Tables.
"""

import time

import numpy as np
import pytest

from repro.core.config import EngineConfig
from repro.core.engine import AggregateRiskEngine

from .conftest import build_workload
from .record import record_benchmark

#: Trial/event axes of bench_batch_layers; the row axis is what grows here.
SHM_TRIALS = 800
SHM_EVENTS = 60
SHM_LAYERS = 64
SHM_ELTS = 2
#: Catalog grown toward the paper's 2M-event scale: the transported stack is
#: n_layers x catalog_size doubles (~80 MB), the axis the transports differ on.
SHM_CATALOG = 160_000

N_WORKERS = 8
#: Portable start method: workers cannot inherit the parent's memory, so the
#: stack must be transported — by pickling or by shared-memory attach.
START_METHOD = "forkserver"


def _workload():
    return build_workload(
        n_trials=SHM_TRIALS,
        events_per_trial=SHM_EVENTS,
        n_layers=SHM_LAYERS,
        elts_per_layer=SHM_ELTS,
        catalog_size=SHM_CATALOG,
    )


def _engine(shared_memory: str) -> AggregateRiskEngine:
    return AggregateRiskEngine(
        EngineConfig(
            backend="multicore",
            n_workers=N_WORKERS,
            start_method=START_METHOD,
            shared_memory=shared_memory,
        )
    )


def _prime(workload) -> None:
    """Materialise the layer caches so only pricing + transport is measured."""
    for layer in workload.program.layers:
        layer.loss_matrix().combined_net_losses()


@pytest.mark.benchmark(group="plan-sharedmem")
@pytest.mark.parametrize("shared_memory", ["off", "on"], ids=["pickle", "sharedmem"])
def test_sharedmem_vs_pickle_transport(benchmark, shared_memory):
    workload = _workload()
    _prime(workload)
    engine = _engine(shared_memory)
    engine.run(workload.program, workload.yet)  # warm the fork server
    result = benchmark(lambda: engine.run(workload.program, workload.yet))
    benchmark.extra_info["shared_memory"] = shared_memory
    benchmark.extra_info["n_workers"] = N_WORKERS
    benchmark.extra_info["trials_per_second"] = result.trials_per_second


def _best_of(n_repeats: int, fn) -> float:
    best = float("inf")
    for _ in range(n_repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_sharedmem_speedup_at_8_workers():
    """Acceptance: shared-memory transport >= 1.3x the pickling path at 8 workers."""
    workload = _workload()
    _prime(workload)
    shm_engine = _engine("on")
    pickle_engine = _engine("off")

    # Warm-up (starts the fork server) and the correctness cross-check: the
    # transport must never change the numbers, bit for bit.
    shm_result = shm_engine.run(workload.program, workload.yet)
    pickle_result = pickle_engine.run(workload.program, workload.yet)
    assert shm_result.details["shared_memory"] is True
    assert pickle_result.details["shared_memory"] is False
    np.testing.assert_array_equal(shm_result.ylt.losses, pickle_result.ylt.losses)

    shm_seconds = _best_of(3, lambda: shm_engine.run(workload.program, workload.yet))
    pickle_seconds = _best_of(3, lambda: pickle_engine.run(workload.program, workload.yet))
    speedup = pickle_seconds / shm_seconds
    record_benchmark(
        "plan_sharedmem",
        backend="multicore",
        shape={
            "n_trials": SHM_TRIALS,
            "events_per_trial": SHM_EVENTS,
            "n_layers": SHM_LAYERS,
            "elts_per_layer": SHM_ELTS,
            "catalog_size": SHM_CATALOG,
            "n_workers": N_WORKERS,
            "start_method": START_METHOD,
        },
        baseline_seconds=pickle_seconds,
        candidate_seconds=shm_seconds,
        threshold=1.3,
        meta={
            "baseline": "per-worker pickling transport (shared_memory=off)",
            "candidate": "zero-copy shared-memory attach (shared_memory=on)",
            "stack_bytes": SHM_LAYERS * SHM_CATALOG * 8,
        },
    )
    print(
        f"\n{SHM_LAYERS} rows x {SHM_CATALOG} catalog @ {N_WORKERS} workers "
        f"({START_METHOD}): pickle {pickle_seconds:.2f}s, shared-memory "
        f"{shm_seconds:.2f}s -> {speedup:.2f}x"
    )
    assert speedup >= 1.3, (
        f"shared-memory transport only {speedup:.2f}x faster than pickling "
        f"at {N_WORKERS} workers (expected >= 1.3x)"
    )
