"""Figure 3a — multi-core CPU: execution time vs number of cores.

Paper configuration: one OpenMP thread per core, cores varied 1..8 on an Intel
i7-2600; observed speedups 1.5x (2 cores), 2.2x (4), 2.6x (8) — limited by
memory bandwidth.

Scaled reproduction: the ``multicore`` backend (one worker process per
"core") with static scheduling on an 8000-trial workload.  The full 1/2/4/8
sweep is always run; on machines with fewer physical cores than workers the
measured curve flattens (workers time-share the cores), in which case the
attached analytical memory-bandwidth model
(:func:`repro.parallel.scheduling.memory_bound_speedup_model`) provides the
speedup-shape comparison against the paper (see EXPERIMENTS.md).
"""

import pytest

from repro.core.config import EngineConfig
from repro.core.engine import AggregateRiskEngine
from repro.parallel.executor import available_cores
from repro.parallel.scheduling import memory_bound_speedup_model

CORE_COUNTS = (1, 2, 4, 8)


@pytest.mark.benchmark(group="fig3a-cores")
@pytest.mark.parametrize("n_cores", CORE_COUNTS)
def test_fig3a_multicore_time_vs_cores(benchmark, parallel_workload, n_cores):
    engine = AggregateRiskEngine(EngineConfig(
        backend="multicore",
        n_workers=n_cores,
        record_max_occurrence=False,
    ))

    result = benchmark.pedantic(
        lambda: engine.run(parallel_workload.program, parallel_workload.yet),
        rounds=3,
        iterations=1,
        warmup_rounds=1,
    )

    benchmark.extra_info["figure"] = "3a"
    benchmark.extra_info["n_cores"] = n_cores
    benchmark.extra_info["physical_cores_available"] = available_cores()
    benchmark.extra_info["n_trials"] = parallel_workload.yet.n_trials
    benchmark.extra_info["paper_speedup"] = {1: 1.0, 2: 1.5, 4: 2.2, 8: 2.6}.get(n_cores)
    benchmark.extra_info["modelled_speedup"] = memory_bound_speedup_model(n_cores)
    assert result.ylt.n_trials == parallel_workload.yet.n_trials
