"""Shared fixtures and helpers for the benchmark harness.

Every benchmark module regenerates one of the paper's tables or figures on a
*proportionally scaled* workload (see ``DESIGN.md`` §5 and the module
docstrings).  Workload generation is deterministic and cached per session so
that the sweeps measure the engine, not the generator.

Run the full harness with::

    pytest benchmarks/ --benchmark-only

Each benchmark attaches the sweep parameters (and, for the GPU experiments,
the modelled full-scale kernel time) to ``benchmark.extra_info`` so that the
JSON output of ``--benchmark-json`` contains everything EXPERIMENTS.md needs.
"""

from __future__ import annotations

from typing import Dict, Tuple

import pytest

from repro.core.config import EngineConfig
from repro.core.engine import AggregateRiskEngine
from repro.workloads.generator import AggregateWorkload, WorkloadGenerator, WorkloadSpec

# --------------------------------------------------------------------------- #
# Scaled workload dimensions (paper values in comments)
# --------------------------------------------------------------------------- #
#: Trials used by the CPU-oriented sweeps (paper: 1,000,000).
BENCH_TRIALS = 2000
#: Trials used by the parallel-speedup sweeps (larger so that process start-up
#: does not dominate; paper: 1,000,000).
BENCH_TRIALS_PARALLEL = 8000
#: Events per trial (paper: 1000).
BENCH_EVENTS = 100
#: ELTs per layer (paper: 15).
BENCH_ELTS_PER_LAYER = 15
#: Catalog size (paper: 2,000,000).
BENCH_CATALOG = 40_000

_WORKLOAD_CACHE: Dict[Tuple, AggregateWorkload] = {}


def build_workload(
    n_trials: int = BENCH_TRIALS,
    events_per_trial: int = BENCH_EVENTS,
    n_layers: int = 1,
    elts_per_layer: int = BENCH_ELTS_PER_LAYER,
    catalog_size: int = BENCH_CATALOG,
    seed: int = 7_2012,
) -> AggregateWorkload:
    """Build (and cache) a deterministic benchmark workload."""
    key = (n_trials, events_per_trial, n_layers, elts_per_layer, catalog_size, seed)
    if key not in _WORKLOAD_CACHE:
        spec = WorkloadSpec(
            n_trials=n_trials,
            events_per_trial=events_per_trial,
            n_layers=n_layers,
            elts_per_layer=elts_per_layer,
            catalog_size=catalog_size,
            buildings_per_exposure=60,
            n_regions=32,
            fixed_trial_length=True,
            seed=seed,
        )
        _WORKLOAD_CACHE[key] = WorkloadGenerator(spec).generate()
    return _WORKLOAD_CACHE[key]


def run_engine(workload: AggregateWorkload, config: EngineConfig):
    """Run the engine once and return the result (used inside benchmarks)."""
    return AggregateRiskEngine(config).run(workload.program, workload.yet)


@pytest.fixture(scope="session")
def baseline_workload() -> AggregateWorkload:
    """The default single-layer benchmark workload (2000 x 100 x 15)."""
    return build_workload()


@pytest.fixture(scope="session")
def parallel_workload() -> AggregateWorkload:
    """The larger workload used by the multi-core sweeps (8000 x 100 x 15)."""
    return build_workload(n_trials=BENCH_TRIALS_PARALLEL)
